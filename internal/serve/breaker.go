package serve

import (
	"sync"
	"time"

	"mmwalign/internal/obs"
)

// breakerState is the classic three-state circuit over estimator
// failures.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerOutcome classifies how a request that passed Allow ended, for
// resolve. Neutral outcomes (bad request, client gone, deadline) say
// nothing about estimator health and must not move the circuit.
type breakerOutcome int

const (
	breakerNeutral breakerOutcome = iota
	breakerSuccess
	breakerFailure
)

// breakerEntry is one estimator key's circuit state.
type breakerEntry struct {
	state       breakerState
	consecutive int       // consecutive estimation failures while closed
	openedAt    time.Time // when the circuit last opened
	probing     bool      // a half-open probe request is in flight
}

// breaker short-circuits estimation work that keeps failing: after
// threshold consecutive typed estimation failures on one key (an
// EstimatorSpec, or the align-side equivalent), the circuit opens and
// requests for that key are answered immediately with the scan-order
// fallback instead of burning a full solver budget each. After the
// cooldown one probe request is let through half-open; success closes
// the circuit, failure re-opens it for another cooldown.
//
// Entries are created only by failures — a healthy server holds no
// breaker state at all — and live in an LRU-bounded table so hostile
// spec churn cannot grow memory. A nil breaker (disabled) allows
// everything.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	entries   *lruMap // key → *breakerEntry

	trips      *obs.Counter
	probes     *obs.Counter
	recoveries *obs.Counter
	shorts     *obs.Counter
}

// newBreaker builds a breaker tripping after threshold consecutive
// failures, holding open for cooldown, over at most maxEntries keys.
func newBreaker(threshold int, cooldown time.Duration, maxEntries int, now func() time.Time, rec *obs.Recorder) *breaker {
	if threshold <= 0 {
		return nil
	}
	return &breaker{
		threshold:  threshold,
		cooldown:   cooldown,
		now:        now,
		entries:    newLRUMap(maxEntries),
		trips:      rec.Counter("serve_breaker_trips"),
		probes:     rec.Counter("serve_breaker_probes"),
		recoveries: rec.Counter("serve_breaker_recoveries"),
		shorts:     rec.Counter("serve_breaker_short_circuits"),
	}
}

// Allow decides whether a request for key may run the estimator.
// proceed=false means the circuit is open: answer with the scan-order
// fallback and the retryAfter hint. probe=true marks the single
// half-open trial request; its caller must report the outcome through
// resolve so the probe slot is never leaked.
func (b *breaker) Allow(key string) (proceed, probe bool, retryAfter time.Duration) {
	if b == nil {
		return true, false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.entries.get(key)
	if !ok {
		return true, false, 0
	}
	e := v.(*breakerEntry)
	switch e.state {
	case breakerClosed:
		return true, false, 0
	case breakerOpen:
		if elapsed := b.now().Sub(e.openedAt); elapsed >= b.cooldown {
			e.state = breakerHalfOpen
			e.probing = true
			b.probes.Add(1)
			return true, true, 0
		} else {
			b.shorts.Add(1)
			return false, false, b.cooldown - elapsed
		}
	default: // half-open
		if e.probing {
			// One probe at a time: concurrent arrivals short-circuit until
			// the in-flight probe resolves.
			b.shorts.Add(1)
			return false, false, b.cooldown
		}
		e.probing = true
		b.probes.Add(1)
		return true, true, 0
	}
}

// resolve reports how a request that passed Allow ended. Successes
// reset the failure streak and close a half-open circuit; failures
// extend the streak (tripping the circuit at the threshold) or re-open
// a half-open one. Neutral outcomes only release the probe slot.
func (b *breaker) resolve(key string, probe bool, outcome breakerOutcome) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.entries.get(key)
	var e *breakerEntry
	if ok {
		e = v.(*breakerEntry)
	} else {
		if outcome != breakerFailure {
			// Healthy keys never allocate breaker state.
			return
		}
		e = &breakerEntry{}
		b.entries.put(key, e)
	}
	if probe {
		e.probing = false
	}
	switch outcome {
	case breakerSuccess:
		e.consecutive = 0
		if e.state != breakerClosed {
			e.state = breakerClosed
			b.recoveries.Add(1)
		}
	case breakerFailure:
		e.consecutive++
		switch {
		case e.state == breakerHalfOpen && probe:
			// Probe failed: back to open for another full cooldown.
			e.state = breakerOpen
			e.openedAt = b.now()
			b.trips.Add(1)
		case e.state == breakerClosed && e.consecutive >= b.threshold:
			e.state = breakerOpen
			e.openedAt = b.now()
			b.trips.Add(1)
		}
	}
}

// States snapshots every tracked key's circuit state for /statsz. A
// healthy server returns an empty map — entries exist only for keys
// that have failed.
func (b *breaker) States() map[string]string {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.entries.len() == 0 {
		return nil
	}
	out := make(map[string]string, b.entries.len())
	b.entries.each(func(key string, val any) {
		out[key] = val.(*breakerEntry).state.String()
	})
	return out
}
