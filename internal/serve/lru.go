package serve

import "container/list"

// lruMap is a capacity-bounded string-keyed map with least-recently-
// used eviction. The resilience layer keys state by client-controlled
// identifiers (client IDs for rate-limit buckets, estimator-spec keys
// for breaker entries), so every such table must be bounded: a hostile
// peer churning fresh identifiers must recycle old entries, never grow
// the server's memory. Not concurrency-safe — callers hold their own
// mutex, which they need anyway to make check-then-update atomic.
type lruMap struct {
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

// lruEntry is one key/value pair threaded through the recency list.
type lruEntry struct {
	key string
	val any
}

// newLRUMap builds an empty map bounded at capacity entries (min 1).
func newLRUMap(capacity int) *lruMap {
	if capacity < 1 {
		capacity = 1
	}
	return &lruMap{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the value for key, marking it most recently used.
func (m *lruMap) get(key string) (any, bool) {
	el, ok := m.items[key]
	if !ok {
		return nil, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when the map is at capacity.
func (m *lruMap) put(key string, val any) {
	if el, ok := m.items[key]; ok {
		el.Value.(*lruEntry).val = val
		m.order.MoveToFront(el)
		return
	}
	if m.order.Len() >= m.cap {
		oldest := m.order.Back()
		if oldest != nil {
			m.order.Remove(oldest)
			delete(m.items, oldest.Value.(*lruEntry).key)
		}
	}
	m.items[key] = m.order.PushFront(&lruEntry{key: key, val: val})
}

// len reports the current entry count.
func (m *lruMap) len() int { return m.order.Len() }

// each visits every entry, most recently used first.
func (m *lruMap) each(fn func(key string, val any)) {
	for el := m.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry)
		fn(e.key, e.val)
	}
}
