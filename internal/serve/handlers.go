package serve

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"mmwalign/internal/align"
	"mmwalign/internal/antenna"
	"mmwalign/internal/channel"
	"mmwalign/internal/covest"
	"mmwalign/internal/meas"
	"mmwalign/internal/obs"
	"mmwalign/internal/rng"
)

// estimateRequest is the POST /v1/estimate body: a sounding
// configuration plus the energy observations of one estimation window.
// Observations reference RX beams by codebook index — the server owns
// the codebook, so clients never ship weight vectors.
type estimateRequest struct {
	// PanelX, PanelZ are the RX UPA dimensions (default 8×8).
	PanelX int `json:"panel_x,omitempty"`
	PanelZ int `json:"panel_z,omitempty"`
	// BeamsAz, BeamsEl shape the RX codebook grid (default 8×8).
	BeamsAz int `json:"beams_az,omitempty"`
	BeamsEl int `json:"beams_el,omitempty"`
	// SNRdB is the pre-beamforming sounding SNR (default 0 dB).
	SNRdB float64 `json:"snr_db,omitempty"`
	// Mu is the nuclear-norm regularization weight (default 1).
	Mu float64 `json:"mu,omitempty"`
	// MaxIters bounds the proximal solver iterations (default 25).
	MaxIters int `json:"max_iters,omitempty"`
	// Accelerated selects FISTA over ISTA.
	Accelerated bool `json:"accelerated,omitempty"`
	// Observations is the estimation window.
	Observations []estimateObservation `json:"observations"`
	// TopK is how many ranked beams to return (default 8).
	TopK int `json:"top_k,omitempty"`
	// TimeoutMS overrides the server's default request deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Telemetry asks for the per-request recorder snapshot (a manifest
	// fragment) in the response. Off by default: the snapshot carries
	// wall-clock phase timings, which would break response determinism.
	Telemetry bool `json:"telemetry,omitempty"`
}

// estimateObservation is one energy measurement keyed by RX beam index.
type estimateObservation struct {
	Beam   int     `json:"beam"`
	Energy float64 `json:"energy"`
}

// beamPick reports one selected beam with its steering direction and
// quadratic-form score.
type beamPick struct {
	Beam  int     `json:"beam"`
	AzDeg float64 `json:"az_deg"`
	ElDeg float64 `json:"el_deg"`
	Score float64 `json:"score"`
}

// estimateResponse is the POST /v1/estimate success body. Every field
// is a deterministic function of the request — no timing, no request
// IDs — so identical requests yield byte-identical bodies at any server
// concurrency.
type estimateResponse struct {
	// Estimate summarizes Q̂.
	Estimate estimateSummary `json:"estimate"`
	// Picks are the codebook beams ranked by vᴴQ̂v.
	Picks picks `json:"picks"`
	// Solver reports the iteration cost counters.
	Solver solverSummary `json:"solver"`
	// Telemetry is the optional per-request manifest fragment.
	Telemetry *obs.Snapshot `json:"telemetry,omitempty"`
}

// estimateSummary is the Q̂ digest: enough to judge estimate quality
// without shipping an N×N complex matrix.
type estimateSummary struct {
	// N is the ambient (antenna) dimension.
	N int `json:"n"`
	// Trace is tr(Q̂) = ‖Q̂‖_* on the PSD cone.
	Trace float64 `json:"trace"`
	// Rank is the numerical rank of Q̂.
	Rank int `json:"rank"`
	// SubspaceDim is the measurement-subspace dimension the solver
	// worked in.
	SubspaceDim int `json:"subspace_dim"`
	// TopEigenvalue is Q̂'s largest eigenvalue (the dominant-path gain).
	TopEigenvalue float64 `json:"top_eigenvalue"`
	// Objective is the final penalized negative log-likelihood.
	Objective float64 `json:"objective"`
	// StopReason is the solver's terminal state.
	StopReason string `json:"stop_reason"`
	// Degraded marks estimates produced through a solver guardrail.
	Degraded bool `json:"degraded"`
}

// picks carries the beam-selection half of the response.
type picks struct {
	Best beamPick   `json:"best"`
	TopK []beamPick `json:"top_k"`
}

// solverSummary mirrors covest.Stats' cost counters.
type solverSummary struct {
	Iters          int `json:"iters"`
	EigenDecomps   int `json:"eigen_decomps"`
	ObjectiveEvals int `json:"objective_evals"`
	GradientEvals  int `json:"gradient_evals"`
	Backtracks     int `json:"backtracks"`
}

// scanFallback builds the scan-order degradation hint for a codebook:
// the prefix of the snake-raster sweep a client can sound directly when
// estimation is unavailable (the same policy the alignment strategies
// fall back to internally).
func scanFallback(book *antenna.Codebook, n int) *fallbackInfo {
	order := book.SnakeOrder()
	if n > len(order) {
		n = len(order)
	}
	return &fallbackInfo{Policy: "scan-order", RXBeams: order[:n]}
}

// handleEstimate answers POST /v1/estimate: lease a pooled session, run
// the covariance estimate, rank the codebook, release the session.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, errBadRequest, err.Error(), nil)
		return
	}
	if len(req.Observations) == 0 {
		s.writeError(w, errBadRequest, "no observations", nil)
		return
	}
	if req.TopK == 0 {
		req.TopK = 8
	}
	if req.TopK < 0 {
		s.writeError(w, errBadRequest, "top_k must be non-negative", nil)
		return
	}

	ctx, cancel, ok := s.requestContext(r, req.TimeoutMS)
	if !ok {
		s.writeError(w, errDeadlineExceeded, "request deadline already expired", nil)
		return
	}
	defer cancel()
	// An expired deadline is rejected before admission and before any
	// session is leased — the request must not consume pool capacity.
	if err := ctx.Err(); err != nil {
		s.writeError(w, errDeadlineExceeded, "request deadline already expired", nil)
		return
	}

	release, kind, detail := s.admit(ctx, "estimate")
	if kind != "" {
		s.writeError(w, kind, detail, nil)
		return
	}
	defer release()

	spec := EstimatorSpec{
		PanelX:      req.PanelX,
		PanelZ:      req.PanelZ,
		BeamsAz:     req.BeamsAz,
		BeamsEl:     req.BeamsEl,
		Gamma:       channel.DBToLinear(req.SNRdB),
		Mu:          req.Mu,
		MaxIters:    req.MaxIters,
		Accelerated: req.Accelerated,
	}
	// Validate before the breaker consults the canonical spec key, so the
	// circuit never keys on (or the short-circuit codebook builds from)
	// geometry the constructors would panic on. Lease re-validates; same
	// error text either way.
	eff := spec.WithDefaults()
	if err := eff.Validate(); err != nil {
		s.writeError(w, errBadRequest, err.Error(), nil)
		return
	}

	// Circuit breaker: a spec whose estimator keeps failing is answered
	// straight from the shared codebook — scan-order fallback, no session
	// leased, no solver budget burned.
	bkey := "estimate:" + eff.key()
	proceed, probe, wait := s.breaker.Allow(bkey)
	if !proceed {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(wait)))
		s.writeError(w, errCircuitOpen,
			"estimator circuit open for this spec; sound the scan-order fallback",
			scanFallback(s.pool.book(eff), req.TopK))
		return
	}
	outcome := breakerNeutral
	defer func() { s.breaker.resolve(bkey, probe, outcome) }()

	lease, err := s.pool.Lease(spec)
	if err != nil {
		s.writeError(w, errBadRequest, err.Error(), nil)
		return
	}
	sess := lease.Session()
	book := sess.Book()
	// A panic mid-solve means the session's arenas may hold torn state:
	// discard the session (the pool builds a fresh one) instead of
	// poisoning the next request, and answer a typed 500. The recovery
	// path reads the codebook captured above — shared, immutable, and
	// alive past the lease — because Lease.Session() panics by design
	// once Discard has run.
	done := false
	defer func() {
		if p := recover(); p != nil {
			if !done {
				lease.Discard()
			}
			outcome = breakerFailure
			s.rec.Counter("serve_panics").Add(1)
			s.writeError(w, errInternalPanic, "request panicked; session discarded",
				scanFallback(book, req.TopK))
		}
	}()
	if s.cfg.estimateHook != nil {
		s.cfg.estimateHook()
	}

	sess.obsBuf = sess.obsBuf[:0]
	for i, o := range req.Observations {
		if o.Beam < 0 || o.Beam >= book.Size() {
			done = true
			lease.Release()
			s.writeError(w, errBadRequest,
				fmt.Sprintf("observation %d: beam index %d out of range [0,%d)", i, o.Beam, book.Size()), nil)
			return
		}
		sess.obsBuf = append(sess.obsBuf, covest.Observation{
			V:      book.Beam(o.Beam).Weights,
			Energy: o.Energy,
		})
	}

	rec := obs.New()
	q, stats, err := sess.Estimator().EstimateContext(obs.Into(ctx, rec), sess.obsBuf, nil)
	if err != nil {
		done = true
		lease.Release()
		if k, isCtx := ctxErrKind(err); isCtx {
			s.writeError(w, k, err.Error(), scanFallback(book, req.TopK))
			return
		}
		// Estimation failure (poisoned energies, degenerate solve) is the
		// server-side analogue of the strategies' estimator failure: the
		// typed 5xx carries the scan-order fallback so the client can
		// keep sounding without an estimate.
		outcome = breakerFailure
		s.rec.Counter("serve_estimation_failures").Add(1)
		s.writeError(w, errEstimationFailed, err.Error(), scanFallback(book, req.TopK))
		return
	}
	outcome = breakerSuccess

	bestIdx, bestScore := book.BestQuadForm(q)
	sess.topk = book.TopKQuadFormInto(q, req.TopK, sess.topk)
	scores := book.QuadFormScoresInto(q, sess.scores)

	resp := estimateResponse{
		Estimate: estimateSummary{
			N:             spec.WithDefaults().PanelX * spec.WithDefaults().PanelZ,
			Trace:         real(q.Trace()),
			Rank:          stats.Rank,
			SubspaceDim:   stats.SubspaceDim,
			TopEigenvalue: topEigenvalue(scores, bestScore),
			Objective:     stats.Objective,
			StopReason:    stats.Diagnostics.Reason.String(),
			Degraded:      stats.Diagnostics.Degraded(),
		},
		Picks: picks{
			Best: pickFor(book, bestIdx, bestScore),
			TopK: make([]beamPick, 0, len(sess.topk)),
		},
		Solver: solverSummary{
			Iters:          stats.Iters,
			EigenDecomps:   stats.EigenDecomps,
			ObjectiveEvals: stats.ObjectiveEvals,
			GradientEvals:  stats.GradientEvals,
			Backtracks:     stats.Backtracks,
		},
	}
	for _, idx := range sess.topk {
		resp.Picks.TopK = append(resp.Picks.TopK, pickFor(book, idx, scores[idx]))
	}
	if req.Telemetry {
		snap := rec.Snapshot()
		resp.Telemetry = &snap
	}
	done = true
	lease.Release()
	writeJSON(w, resp)
}

// finite reports whether f is neither NaN nor ±Inf.
func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// pickFor assembles the response entry for one beam.
func pickFor(book *antenna.Codebook, idx int, score float64) beamPick {
	b := book.Beam(idx)
	return beamPick{
		Beam:  idx,
		AzDeg: b.Dir.Az * 180 / math.Pi,
		ElDeg: b.Dir.El * 180 / math.Pi,
		Score: score,
	}
}

// topEigenvalue approximates Q̂'s dominant eigenvalue by the largest
// codebook quadratic form — exact when the dominant eigenvector is a
// codebook beam, and a tight lower bound otherwise (the quantity beam
// selection actually maximizes).
func topEigenvalue(scores []float64, best float64) float64 {
	top := best
	for _, v := range scores {
		if v > top {
			top = v
		}
	}
	return top
}

// alignRequest is the POST /v1/align body: a full simulated alignment
// run — link geometry, channel model, scheme, and measurement budget.
// Deterministic for a fixed seed.
type alignRequest struct {
	// Scheme names the strategy (see align.SchemeNames). Default
	// "proposed".
	Scheme string `json:"scheme,omitempty"`
	// Budget is the measurement budget L (required).
	Budget int `json:"budget"`
	// Seed fixes the channel realization and strategy randomness.
	Seed int64 `json:"seed,omitempty"`
	// SNRdB is the pre-beamforming sounding SNR (default 0 dB).
	SNRdB float64 `json:"snr_db,omitempty"`
	// Channel picks the propagation model: "single-path" (default) or
	// "nyc-multipath".
	Channel string `json:"channel,omitempty"`
	// Snapshots is the per-measurement snapshot count (default 4).
	Snapshots int `json:"snapshots,omitempty"`
	// TXPanelX/Z, RXPanelX/Z are the UPA dimensions (default 4×4 TX,
	// 8×8 RX).
	TXPanelX int `json:"tx_panel_x,omitempty"`
	TXPanelZ int `json:"tx_panel_z,omitempty"`
	RXPanelX int `json:"rx_panel_x,omitempty"`
	RXPanelZ int `json:"rx_panel_z,omitempty"`
	// TXBeamsAz/El, RXBeamsAz/El shape the codebook grids (default 4×4
	// TX, 8×8 RX).
	TXBeamsAz int `json:"tx_beams_az,omitempty"`
	TXBeamsEl int `json:"tx_beams_el,omitempty"`
	RXBeamsAz int `json:"rx_beams_az,omitempty"`
	RXBeamsEl int `json:"rx_beams_el,omitempty"`
	// J, Mu, Window tune the proposed scheme (defaults 8, 1, 96).
	J      int     `json:"j,omitempty"`
	Mu     float64 `json:"mu,omitempty"`
	Window int     `json:"window,omitempty"`
	// TimeoutMS overrides the server's default request deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Telemetry asks for the per-request recorder snapshot.
	Telemetry bool `json:"telemetry,omitempty"`
}

func (r alignRequest) withDefaults() alignRequest {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	if r.Scheme == "" {
		r.Scheme = "proposed"
	}
	if r.Channel == "" {
		r.Channel = "single-path"
	}
	def(&r.Snapshots, 4)
	def(&r.TXPanelX, 4)
	def(&r.TXPanelZ, 4)
	def(&r.RXPanelX, 8)
	def(&r.RXPanelZ, 8)
	def(&r.TXBeamsAz, 4)
	def(&r.TXBeamsEl, 4)
	def(&r.RXBeamsAz, 8)
	def(&r.RXBeamsEl, 8)
	return r
}

// validate rejects geometry the environment constructor would panic on
// (negative panel or beam-grid dimensions reach cmat.NewVector /
// NewGridCodebook before any recover is armed). withDefaults has
// already filled zeros, so anything non-positive here was explicitly
// negative in the request.
func (r alignRequest) validate() error {
	if r.TXPanelX <= 0 || r.TXPanelZ <= 0 {
		return fmt.Errorf("tx panel %dx%d must be positive", r.TXPanelX, r.TXPanelZ)
	}
	if r.RXPanelX <= 0 || r.RXPanelZ <= 0 {
		return fmt.Errorf("rx panel %dx%d must be positive", r.RXPanelX, r.RXPanelZ)
	}
	if r.TXBeamsAz <= 0 || r.TXBeamsEl <= 0 {
		return fmt.Errorf("tx beam grid %dx%d must be positive", r.TXBeamsAz, r.TXBeamsEl)
	}
	if r.RXBeamsAz <= 0 || r.RXBeamsEl <= 0 {
		return fmt.Errorf("rx beam grid %dx%d must be positive", r.RXBeamsAz, r.RXBeamsEl)
	}
	if r.Snapshots <= 0 {
		return fmt.Errorf("snapshots %d must be positive", r.Snapshots)
	}
	return nil
}

// alignResponse is the POST /v1/align success body.
type alignResponse struct {
	Scheme string `json:"scheme"`
	// TXBeam/RXBeam are the selected codebook indices with their
	// steering angles.
	TXBeam beamPick `json:"tx_beam"`
	RXBeam beamPick `json:"rx_beam"`
	// MeasuredSNRdB is what the receiver can report; TrueSNRdB and
	// OptimalSNRdB are the ground-truth scores; LossDB is the paper's
	// Eq. 31 metric.
	MeasuredSNRdB float64 `json:"measured_snr_db"`
	TrueSNRdB     float64 `json:"true_snr_db"`
	OptimalSNRdB  float64 `json:"optimal_snr_db"`
	LossDB        float64 `json:"loss_db"`
	// Measurements and SearchRate report the sounding cost (Eq. 32).
	Measurements int     `json:"measurements"`
	SearchRate   float64 `json:"search_rate"`
	// Fallback, when present, notes that the run degraded to scan-order
	// sounding (estimator failures mid-trajectory) and how often.
	Fallback *fallbackInfo `json:"fallback,omitempty"`
	// Degraded marks a brown-out response: the server transparently ran
	// the cheap scan-order strategy instead of the requested scheme to
	// keep answering under sustained overload. Omitted when false, so
	// full-quality responses stay byte-identical to a server without the
	// resilience layer.
	Degraded bool `json:"degraded,omitempty"`
	// Telemetry is the optional per-request manifest fragment.
	Telemetry *obs.Snapshot `json:"telemetry,omitempty"`
}

// handleAlign answers POST /v1/align: build the simulated link, run the
// strategy under the request deadline, score against the oracle.
func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	var req alignRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, errBadRequest, err.Error(), nil)
		return
	}
	req = req.withDefaults()
	if req.Budget <= 0 {
		s.writeError(w, errBadRequest, "budget must be positive", nil)
		return
	}
	if err := req.validate(); err != nil {
		s.writeError(w, errBadRequest, err.Error(), nil)
		return
	}

	ctx, cancel, ok := s.requestContext(r, req.TimeoutMS)
	if !ok {
		s.writeError(w, errDeadlineExceeded, "request deadline already expired", nil)
		return
	}
	defer cancel()
	if err := ctx.Err(); err != nil {
		s.writeError(w, errDeadlineExceeded, "request deadline already expired", nil)
		return
	}

	release, kind, detail := s.admit(ctx, "align")
	if kind != "" {
		s.writeError(w, kind, detail, nil)
		return
	}
	defer release()

	env, err := s.buildEnv(req)
	if err != nil {
		s.writeError(w, errBadRequest, err.Error(), nil)
		return
	}

	// Brown-out: under sustained queue pressure every align request runs
	// the cheap scan-order sweep instead of its requested scheme, marked
	// "degraded": true — the server keeps answering rather than 503ing.
	scheme := req.Scheme
	degraded := false
	if scheme != "scan" && s.brownout.Degraded() {
		scheme = "scan"
		degraded = true
	}

	// Circuit breaker, keyed by effective scheme + codebook geometry.
	// Checked after buildEnv so a short-circuited request still exercises
	// the prober seam's wrap (fault-injection schedules keyed on wrap
	// count stay aligned).
	bkey := fmt.Sprintf("align:%s:%dx%d:%dx%d", scheme,
		req.TXBeamsAz, req.TXBeamsEl, req.RXBeamsAz, req.RXBeamsEl)
	proceed, probe, wait := s.breaker.Allow(bkey)
	if !proceed {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(wait)))
		s.writeError(w, errCircuitOpen,
			"alignment circuit open for this scheme; sound the scan-order fallback",
			scanFallback(env.RXBook, 8))
		return
	}
	outcome := breakerNeutral
	defer func() { s.breaker.resolve(bkey, probe, outcome) }()

	strat, err := align.ForScheme(scheme, env.RXBook, align.SchemeSpec{
		J:      req.J,
		Mu:     req.Mu,
		Window: req.Window,
		Gamma:  channel.DBToLinear(req.SNRdB),
	})
	if err != nil {
		s.writeError(w, errBadRequest, err.Error(), nil)
		return
	}

	// Panics from the measurement path (e.g. an injected prober fault)
	// must not take the server down: answer a typed 500. The env is
	// request-local, so no pooled state needs discarding here.
	defer func() {
		if p := recover(); p != nil {
			outcome = breakerFailure
			s.rec.Counter("serve_panics").Add(1)
			s.writeError(w, errInternalPanic, "alignment run panicked",
				scanFallback(env.RXBook, 8))
		}
	}()

	rec := obs.New()
	tr, err := align.EvaluateContext(obs.Into(ctx, rec), env, strat, req.Budget)
	if err != nil {
		if k, isCtx := ctxErrKind(err); isCtx {
			s.writeError(w, k, err.Error(), scanFallback(env.RXBook, 8))
			return
		}
		outcome = breakerFailure
		s.rec.Counter("serve_estimation_failures").Add(1)
		s.writeError(w, errEstimationFailed, err.Error(), scanFallback(env.RXBook, 8))
		return
	}

	resp := alignResponse{
		Scheme:        tr.Scheme,
		TXBeam:        pickFor(env.TXBook, tr.BestPair.TX, channel.LinearToDB(tr.BestTrueSNR)),
		RXBeam:        pickFor(env.RXBook, tr.BestPair.RX, channel.LinearToDB(tr.BestTrueSNR)),
		MeasuredSNRdB: channel.LinearToDB(tr.BestMeasuredSNR),
		TrueSNRdB:     channel.LinearToDB(tr.BestTrueSNR),
		OptimalSNRdB:  channel.LinearToDB(tr.OptSNR),
		LossDB:        tr.FinalLossDB(),
		Measurements:  len(tr.LossDB),
		SearchRate:    float64(len(tr.LossDB)) / float64(env.TotalPairs()),
	}
	// A non-finite score means the run's measurements were poisoned
	// (e.g. injected NaN energies): the selected pair is garbage, and
	// JSON could not carry the values anyway. Report the degradation as
	// a typed failure carrying the scan-order fallback.
	if !finite(resp.MeasuredSNRdB) || !finite(resp.TrueSNRdB) || !finite(resp.OptimalSNRdB) || !finite(resp.LossDB) {
		outcome = breakerFailure
		s.rec.Counter("serve_estimation_failures").Add(1)
		s.writeError(w, errEstimationFailed,
			"alignment produced a non-finite result (poisoned measurements)", scanFallback(env.RXBook, 8))
		return
	}
	outcome = breakerSuccess
	if n := rec.Counter("estimator_fallbacks").Value(); n > 0 {
		resp.Fallback = &fallbackInfo{Policy: "scan-order", Count: n}
	}
	if degraded {
		resp.Degraded = true
		s.rec.Counter("serve_degraded_responses").Add(1)
	}
	if req.Telemetry {
		snap := rec.Snapshot()
		resp.Telemetry = &snap
	}
	writeJSON(w, resp)
}

// retryAfterSecs rounds a wait up to whole seconds for the Retry-After
// header, at least one.
func retryAfterSecs(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// buildEnv constructs the request-local simulation environment,
// threading the server's prober seam around the sounder.
func (s *Server) buildEnv(req alignRequest) (*align.Env, error) {
	tx := antenna.NewUPA(req.TXPanelX, req.TXPanelZ)
	rx := antenna.NewUPA(req.RXPanelX, req.RXPanelZ)
	root := rng.New(req.Seed)

	var (
		ch  *channel.Channel
		err error
	)
	switch req.Channel {
	case "single-path":
		ch, err = channel.NewSinglePath(root.Split("channel"), tx, rx, channel.SinglePathSpec{})
	case "nyc-multipath":
		ch, err = channel.NewNYCMultipath(root.Split("channel"), tx, rx, channel.DefaultNYC28())
	default:
		return nil, fmt.Errorf("serve: unknown channel %q (want single-path or nyc-multipath)", req.Channel)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: building channel: %w", err)
	}

	sounder, err := meas.NewSounder(ch, channel.DBToLinear(req.SNRdB), root.Split("noise"))
	if err != nil {
		return nil, fmt.Errorf("serve: building sounder: %w", err)
	}
	sounder.SetSnapshots(req.Snapshots)
	var prober meas.Prober = sounder
	if s.cfg.WrapProber != nil {
		prober = s.cfg.WrapProber(prober)
	}

	return &align.Env{
		TXBook:  antenna.NewGridCodebook(tx, req.TXBeamsAz, req.TXBeamsEl, math.Pi, math.Pi/2),
		RXBook:  antenna.NewGridCodebook(rx, req.RXBeamsAz, req.RXBeamsEl, math.Pi, math.Pi/2),
		Sounder: prober,
		// Matches a fresh Link's first Align run (api.go seeds run i
		// with SplitIndexed("align-run", i)), so a served alignment
		// returns the same pair and loss as the embedded facade on the
		// same seed.
		Src: root.SplitIndexed("align-run", 1),
	}, nil
}
