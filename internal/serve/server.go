package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mmwalign/internal/meas"
	"mmwalign/internal/metrics"
	"mmwalign/internal/obs"
)

// Config tunes the server. The zero value is usable: defaults are
// filled by NewServer.
type Config struct {
	// MaxConcurrent bounds requests executing simultaneously (default 4).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an execution slot beyond
	// MaxConcurrent (default 8). Arrivals past MaxConcurrent+QueueDepth
	// are rejected with 503 + Retry-After.
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request does
	// not carry its own timeout_ms (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps a request-supplied timeout_ms (default 60s).
	MaxTimeout time.Duration
	// RetryAfterSeconds is the Retry-After hint on 503 responses
	// (default 1).
	RetryAfterSeconds int
	// WrapProber, when non-nil, wraps the sounder of every /v1/align
	// run. This is the server's prober seam: fault injection
	// (internal/faultinject) and instrumentation interpose here.
	WrapProber func(meas.Prober) meas.Prober
	// Recorder receives server-level telemetry (request counters,
	// per-endpoint latency phases). Defaults to a fresh recorder,
	// reachable via Server.Recorder.
	Recorder *obs.Recorder

	// estimateHook, when non-nil, runs inside the estimate handler after
	// the session lease is taken and the panic recovery is armed.
	// In-package test seam for the panic-recovery path, which has no
	// prober to inject faults through.
	estimateHook func()
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.RetryAfterSeconds == 0 {
		c.RetryAfterSeconds = 1
	}
	if c.Recorder == nil {
		c.Recorder = obs.New()
	}
	return c
}

// Server is the alignment service: pooled estimator sessions behind
// bounded-queue admission control, with per-request deadlines, graceful
// drain, and per-endpoint latency telemetry.
type Server struct {
	cfg  Config
	pool *Pool
	rec  *obs.Recorder
	mux  *http.ServeMux

	// sem holds the MaxConcurrent execution slots; admitted requests
	// queue on it (bounded by the inflight accounting below).
	sem chan struct{}

	// mu guards the admission state. inflight counts admitted requests —
	// executing plus queued — so the bound and the drain condition share
	// one counter and cannot disagree. A sync.WaitGroup would race here:
	// Add after Wait has begun is undefined, whereas a mutex-guarded
	// counter makes reject-after-drain-start exact.
	mu          sync.Mutex
	inflight    int
	draining    bool
	drainClosed bool
	drained     chan struct{}

	lat *latencyTracker
}

// NewServer builds a server with a fresh session pool.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    NewPool(),
		rec:     cfg.Recorder,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		drained: make(chan struct{}),
		lat:     newLatencyTracker(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/estimate", s.timed("estimate", s.handleEstimate))
	s.mux.HandleFunc("/v1/align", s.timed("align", s.handleAlign))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Recorder returns the server-level telemetry recorder (for expvar
// publication by the binary).
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Pool returns the session pool (stats surface for /statsz and tests).
func (s *Server) Pool() *Pool { return s.pool }

// Drain puts the server into draining mode — new requests are rejected
// with 503 — and blocks until every in-flight request has completed or
// ctx expires. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 && !s.drainClosed {
		s.drainClosed = true
		close(s.drained)
	}
	s.mu.Unlock()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether the server has begun draining.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// errKind is the typed error taxonomy of the JSON error envelope.
type errKind string

const (
	errBadRequest       errKind = "bad_request"
	errQueueFull        errKind = "queue_full"
	errDraining         errKind = "draining"
	errDeadlineExceeded errKind = "deadline_exceeded"
	errClientGone       errKind = "client_gone"
	errEstimationFailed errKind = "estimation_failed"
	errInternalPanic    errKind = "internal_panic"
)

// statusClientClosedRequest is the de-facto (nginx) status for a client
// that hung up before the response: the peer is gone, so the code
// exists for logs and the serve_errors_* taxonomy, not for the wire.
const statusClientClosedRequest = 499

func (k errKind) status() int {
	switch k {
	case errBadRequest:
		return http.StatusBadRequest
	case errQueueFull, errDraining:
		return http.StatusServiceUnavailable
	case errDeadlineExceeded:
		return http.StatusGatewayTimeout
	case errClientGone:
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// errorInfo is the error half of the envelope.
type errorInfo struct {
	Kind   errKind `json:"kind"`
	Detail string  `json:"detail"`
}

// fallbackInfo notes the degradation policy a client should apply (or
// that the server already applied): the scan-order sweep every scheme
// reduces to when estimation is unavailable.
type fallbackInfo struct {
	// Policy names the degradation mode; always "scan-order".
	Policy string `json:"policy"`
	// RXBeams, when present, is the prefix of the RX codebook's
	// snake-raster order the client can sound directly.
	RXBeams []int `json:"rx_beams,omitempty"`
	// Count, when present, is how many times the run already fell back
	// internally (the estimator_fallbacks counter of the run).
	Count int64 `json:"count,omitempty"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error    errorInfo     `json:"error"`
	Fallback *fallbackInfo `json:"fallback,omitempty"`
}

// writeError emits the typed JSON error envelope, attaching Retry-After
// to the backpressure rejections.
func (s *Server) writeError(w http.ResponseWriter, kind errKind, detail string, fb *fallbackInfo) {
	if kind == errQueueFull || kind == errDraining {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(kind.status())
	_ = json.NewEncoder(w).Encode(errorBody{Error: errorInfo{Kind: kind, Detail: detail}, Fallback: fb})
	s.rec.Counter("serve_errors_" + string(kind)).Add(1)
}

// writeJSON emits a 200 with the marshalled body. Bodies are
// deterministic functions of the request (no timestamps, no latency),
// so identical requests produce byte-identical responses at any
// concurrency — the property the equivalence tests pin down. The body
// is marshalled before any byte is written, so a marshal failure (e.g.
// a non-finite float that slipped past the handlers' guards) yields a
// clean 500 envelope instead of a 200 with an empty body.
func writeJSON(w http.ResponseWriter, body any) {
	data, err := json.Marshal(body)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":{"kind":"internal_panic","detail":"response marshal failed"}}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(data, '\n'))
}

// admit passes a request through the bounded admission queue. On
// success the returned release func must be called exactly once. On
// rejection it returns the error kind to report.
func (s *Server) admit(ctx context.Context) (release func(), kind errKind, detail string) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining, "server is draining"
	}
	if s.inflight >= s.cfg.MaxConcurrent+s.cfg.QueueDepth {
		s.mu.Unlock()
		return nil, errQueueFull,
			fmt.Sprintf("admission queue full (%d executing + %d queued)", s.cfg.MaxConcurrent, s.cfg.QueueDepth)
	}
	s.inflight++
	s.mu.Unlock()

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.requestDone()
		if k, _ := ctxErrKind(ctx.Err()); k == errClientGone {
			return nil, errClientGone, "client went away while queued"
		}
		return nil, errDeadlineExceeded, "deadline expired while queued"
	}
	return func() {
		<-s.sem
		s.requestDone()
	}, "", ""
}

// requestDone retires one admitted request and completes a pending
// drain when it was the last.
func (s *Server) requestDone() {
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 && !s.drainClosed {
		s.drainClosed = true
		close(s.drained)
	}
	s.mu.Unlock()
}

// requestContext derives the per-request deadline: the request's
// timeout_ms clamped to MaxTimeout, or DefaultTimeout when absent. A
// negative timeout means "already expired" and short-circuits before
// admission.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc, bool) {
	if timeoutMS < 0 {
		return nil, nil, false
	}
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, true
}

// timed wraps a handler with method filtering, request counting, and
// per-endpoint latency telemetry. Latency is recorded server-side only
// (recorder phase + percentile tracker) — it never enters the response
// body.
func (s *Server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.rec.Counter("serve_requests_" + name).Add(1)
		start := time.Now()
		h(w, r)
		ns := time.Since(start).Nanoseconds()
		s.rec.Phase("serve." + name).AddNS(ns)
		s.lat.observe(name, ns)
	}
}

// handleHealthz reports liveness: 200 for as long as the process can
// serve HTTP at all, draining included. Liveness and readiness are
// deliberately distinct endpoints — an orchestrator restarts a process
// that fails liveness, which is exactly wrong for a server that is
// healthy and finishing its in-flight work; routing decisions belong
// to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
}

// handleReadyz reports readiness to accept new work: 503 from the
// moment Drain begins — before the last in-flight request completes —
// so load balancers stop routing to the instance while it is still
// alive to finish what it already accepted.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "draining"})
		return
	}
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
}

// statszBody is the /statsz response.
type statszBody struct {
	Pool     PoolStats                 `json:"pool"`
	Inflight int                       `json:"inflight"`
	Draining bool                      `json:"draining"`
	Latency  map[string]LatencySummary `json:"latency_ns"`
	Counters map[string]int64          `json:"counters,omitempty"`
}

// handleStatsz reports pool, admission, and latency statistics.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	inflight := s.inflight
	draining := s.draining
	s.mu.Unlock()
	snap := s.rec.Snapshot()
	writeJSON(w, statszBody{
		Pool:     s.pool.Stats(),
		Inflight: inflight,
		Draining: draining,
		Latency:  s.lat.summaries(),
		Counters: snap.Counters,
	})
}

// LatencySummary is the percentile digest of one endpoint's latency.
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// latencyTracker keeps a bounded reservoir of per-endpoint latency
// samples for percentile reporting. metrics.Histogram is not
// concurrency-safe, so all state lives behind the tracker's mutex.
type latencyTracker struct {
	mu   sync.Mutex
	byEP map[string]*latencyRing
}

// latencyRing is a fixed-capacity overwrite-oldest sample buffer plus a
// coarse histogram (0–100ms) for shape inspection.
type latencyRing struct {
	samples []float64
	next    int
	total   int
	hist    *metrics.Histogram
}

const latencyRingCap = 4096

func newLatencyTracker() *latencyTracker {
	return &latencyTracker{byEP: make(map[string]*latencyRing)}
}

func (t *latencyTracker) observe(endpoint string, ns int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.byEP[endpoint]
	if !ok {
		r = &latencyRing{
			samples: make([]float64, 0, latencyRingCap),
			hist:    metrics.NewHistogram(0, 100e6, 50),
		}
		t.byEP[endpoint] = r
	}
	if len(r.samples) < latencyRingCap {
		r.samples = append(r.samples, float64(ns))
	} else {
		r.samples[r.next] = float64(ns)
		r.next = (r.next + 1) % latencyRingCap
	}
	r.total++
	r.hist.Add(float64(ns))
}

// summaries digests every endpoint's reservoir into percentiles.
func (t *latencyTracker) summaries() map[string]LatencySummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]LatencySummary, len(t.byEP))
	for ep, r := range t.byEP {
		xs := append([]float64(nil), r.samples...)
		out[ep] = LatencySummary{
			Count: r.total,
			P50:   metrics.Percentile(xs, 50),
			P95:   metrics.Percentile(xs, 95),
			P99:   metrics.Percentile(xs, 99),
		}
	}
	return out
}

// decodeBody decodes a JSON request body with a size cap and strict
// field checking, so typos in tuning knobs fail loudly instead of
// silently selecting defaults.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, 4<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// ctxErrKind maps a context error to the envelope taxonomy: a deadline
// is the server's own timeout (504), while Canceled means the client
// went away — its own client_gone kind, so disconnects never skew the
// deadline_exceeded counters.
func ctxErrKind(err error) (errKind, bool) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return errDeadlineExceeded, true
	case errors.Is(err, context.Canceled):
		return errClientGone, true
	}
	return "", false
}
