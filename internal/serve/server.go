package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mmwalign/internal/meas"
	"mmwalign/internal/metrics"
	"mmwalign/internal/obs"
)

// Config tunes the server. The zero value is usable: defaults are
// filled by NewServer.
type Config struct {
	// MaxConcurrent bounds requests executing simultaneously (default 4).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an execution slot beyond
	// MaxConcurrent (default 8). Arrivals past MaxConcurrent+QueueDepth
	// are rejected with 503 + Retry-After.
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request does
	// not carry its own timeout_ms (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps a request-supplied timeout_ms (default 60s).
	MaxTimeout time.Duration
	// RetryAfterSeconds is the Retry-After hint on 503 responses
	// (default 1).
	RetryAfterSeconds int
	// WrapProber, when non-nil, wraps the sounder of every /v1/align
	// run. This is the server's prober seam: fault injection
	// (internal/faultinject) and instrumentation interpose here.
	WrapProber func(meas.Prober) meas.Prober
	// Recorder receives server-level telemetry (request counters,
	// per-endpoint latency phases). Defaults to a fresh recorder,
	// reachable via Server.Recorder.
	Recorder *obs.Recorder

	// --- overload-resilience knobs ---
	// The layer is inert when the server is healthy and unloaded:
	// shedding needs a queue plus observed latency, the breaker needs
	// consecutive failures, brown-out needs sustained queue pressure,
	// and rate limiting is off unless RateLimitPerSec is set.

	// RateLimitPerSec enables per-client token-bucket rate limiting at
	// this sustained request rate (0 disables). Clients are keyed by
	// the X-Client-ID header, falling back to the remote host.
	RateLimitPerSec float64
	// RateLimitBurst is the bucket capacity (default ceil(rate), min 1).
	RateLimitBurst int
	// RateLimitMaxClients bounds the LRU bucket table (default 4096),
	// so hostile client-ID churn recycles buckets instead of growing
	// memory.
	RateLimitMaxClients int
	// BreakerThreshold is how many consecutive estimation failures on
	// one estimator key trip the circuit open (default 5; negative
	// disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit waits before letting
	// a half-open probe through (default 5s).
	BreakerCooldown time.Duration
	// BreakerMaxEntries bounds the LRU breaker table (default 1024).
	BreakerMaxEntries int
	// BrownoutQueueFrac is the queue-occupancy fraction that arms
	// brown-out degraded mode (default 0.75; negative disables).
	BrownoutQueueFrac float64
	// BrownoutAfter is how long pressure must stay at or above the
	// threshold before /v1/align degrades (default 2s).
	BrownoutAfter time.Duration
	// BrownoutRecover is how long pressure must stay clear before full
	// estimation resumes (default 2s).
	BrownoutRecover time.Duration

	// now is the clock seam: the resilience layer (rate-limit refill,
	// breaker cooldown, brown-out windows, shed deadlines) reads time
	// only through it, so tests drive every transition with a fake
	// clock. Defaults to time.Now.
	now func() time.Time

	// estimateHook, when non-nil, runs inside the estimate handler after
	// the session lease is taken and the panic recovery is armed.
	// In-package test seam for the panic-recovery path, which has no
	// prober to inject faults through.
	estimateHook func()
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.RetryAfterSeconds == 0 {
		c.RetryAfterSeconds = 1
	}
	if c.Recorder == nil {
		c.Recorder = obs.New()
	}
	if c.RateLimitMaxClients == 0 {
		c.RateLimitMaxClients = 4096
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BreakerMaxEntries == 0 {
		c.BreakerMaxEntries = 1024
	}
	if c.BrownoutQueueFrac == 0 {
		c.BrownoutQueueFrac = 0.75
	}
	if c.BrownoutAfter == 0 {
		c.BrownoutAfter = 2 * time.Second
	}
	if c.BrownoutRecover == 0 {
		c.BrownoutRecover = 2 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the alignment service: pooled estimator sessions behind
// bounded-queue admission control, with per-request deadlines, graceful
// drain, and per-endpoint latency telemetry.
type Server struct {
	cfg  Config
	pool *Pool
	rec  *obs.Recorder
	mux  *http.ServeMux

	// sem holds the MaxConcurrent execution slots; admitted requests
	// queue on it (bounded by the inflight accounting below).
	sem chan struct{}

	// mu guards the admission state. inflight counts admitted requests —
	// executing plus queued — so the bound and the drain condition share
	// one counter and cannot disagree. A sync.WaitGroup would race here:
	// Add after Wait has begun is undefined, whereas a mutex-guarded
	// counter makes reject-after-drain-start exact.
	mu          sync.Mutex
	inflight    int
	executing   int // admitted requests holding an execution slot
	draining    bool
	drainClosed bool
	drained     chan struct{}

	lat *latencyTracker

	// Overload-resilience subsystems; each is nil when disabled and
	// nil-safe to call, so the hot path carries no conditionals.
	limiter  *rateLimiter
	breaker  *breaker
	brownout *brownout
}

// NewServer builds a server with a fresh session pool.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    NewPool(),
		rec:     cfg.Recorder,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		drained: make(chan struct{}),
		lat:     newLatencyTracker(),
	}
	s.limiter = newRateLimiter(cfg.RateLimitPerSec, cfg.RateLimitBurst, cfg.RateLimitMaxClients,
		cfg.now, cfg.Recorder.Counter("serve_rate_limited"))
	s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.BreakerMaxEntries,
		cfg.now, cfg.Recorder)
	s.brownout = newBrownout(cfg.BrownoutQueueFrac, cfg.QueueDepth, cfg.BrownoutAfter,
		cfg.BrownoutRecover, cfg.now, cfg.Recorder)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/estimate", s.timed("estimate", s.handleEstimate))
	s.mux.HandleFunc("/v1/align", s.timed("align", s.handleAlign))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Recorder returns the server-level telemetry recorder (for expvar
// publication by the binary).
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Pool returns the session pool (stats surface for /statsz and tests).
func (s *Server) Pool() *Pool { return s.pool }

// Drain puts the server into draining mode — new requests are rejected
// with 503 — and blocks until every in-flight request has completed or
// ctx expires. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 && !s.drainClosed {
		s.drainClosed = true
		close(s.drained)
	}
	s.mu.Unlock()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether the server has begun draining.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// errKind is the typed error taxonomy of the JSON error envelope.
type errKind string

const (
	errBadRequest       errKind = "bad_request"
	errQueueFull        errKind = "queue_full"
	errDraining         errKind = "draining"
	errDeadlineExceeded errKind = "deadline_exceeded"
	errClientGone       errKind = "client_gone"
	errEstimationFailed errKind = "estimation_failed"
	errInternalPanic    errKind = "internal_panic"
	errShed             errKind = "shed"
	errRateLimited      errKind = "rate_limited"
	errCircuitOpen      errKind = "circuit_open"
)

// statusClientClosedRequest is the de-facto (nginx) status for a client
// that hung up before the response: the peer is gone, so the code
// exists for logs and the serve_errors_* taxonomy, not for the wire.
const statusClientClosedRequest = 499

func (k errKind) status() int {
	switch k {
	case errBadRequest:
		return http.StatusBadRequest
	case errQueueFull, errDraining, errShed, errCircuitOpen:
		return http.StatusServiceUnavailable
	case errRateLimited:
		return http.StatusTooManyRequests
	case errDeadlineExceeded:
		return http.StatusGatewayTimeout
	case errClientGone:
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// errorInfo is the error half of the envelope.
type errorInfo struct {
	Kind   errKind `json:"kind"`
	Detail string  `json:"detail"`
}

// fallbackInfo notes the degradation policy a client should apply (or
// that the server already applied): the scan-order sweep every scheme
// reduces to when estimation is unavailable.
type fallbackInfo struct {
	// Policy names the degradation mode; always "scan-order".
	Policy string `json:"policy"`
	// RXBeams, when present, is the prefix of the RX codebook's
	// snake-raster order the client can sound directly.
	RXBeams []int `json:"rx_beams,omitempty"`
	// Count, when present, is how many times the run already fell back
	// internally (the estimator_fallbacks counter of the run).
	Count int64 `json:"count,omitempty"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error    errorInfo     `json:"error"`
	Fallback *fallbackInfo `json:"fallback,omitempty"`
}

// writeError emits the typed JSON error envelope, attaching Retry-After
// to the backpressure rejections. Backpressure hints are dynamic: the
// current queue's expected drain time at the observed median service
// rate, floored at the static RetryAfterSeconds flag (so an unobserved
// server behaves exactly as before). Rate-limit and circuit-open
// rejections carry their own hint, set by the caller before this call.
func (s *Server) writeError(w http.ResponseWriter, kind errKind, detail string, fb *fallbackInfo) {
	switch kind {
	case errQueueFull, errDraining, errShed:
		w.Header().Set("Retry-After", strconv.Itoa(s.dynamicRetryAfter()))
	case errRateLimited, errCircuitOpen:
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(kind.status())
	_ = json.NewEncoder(w).Encode(errorBody{Error: errorInfo{Kind: kind, Detail: detail}, Fallback: fb})
	s.rec.Counter("serve_errors_" + string(kind)).Add(1)
}

// writeJSON emits a 200 with the marshalled body. Bodies are
// deterministic functions of the request (no timestamps, no latency),
// so identical requests produce byte-identical responses at any
// concurrency — the property the equivalence tests pin down. The body
// is marshalled before any byte is written, so a marshal failure (e.g.
// a non-finite float that slipped past the handlers' guards) yields a
// clean 500 envelope instead of a 200 with an empty body.
func writeJSON(w http.ResponseWriter, body any) {
	data, err := json.Marshal(body)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":{"kind":"internal_panic","detail":"response marshal failed"}}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(data, '\n'))
}

// admit passes a request through the bounded admission queue. On
// success the returned release func must be called exactly once. On
// rejection it returns the error kind to report.
//
// Between the capacity check and the slot wait sits the deadline-aware
// shed test (CoDel-style): a request whose remaining deadline cannot
// outlast its expected queue wait — queue position times the observed
// median service time per slot — is rejected immediately instead of
// occupying a queue slot only to time out. Cheaper for the server and
// more honest to the client, which gets a Retry-After it can act on
// now rather than a 504 later.
func (s *Server) admit(ctx context.Context, endpoint string) (release func(), kind errKind, detail string) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining, "server is draining"
	}
	if s.inflight >= s.cfg.MaxConcurrent+s.cfg.QueueDepth {
		s.mu.Unlock()
		return nil, errQueueFull,
			fmt.Sprintf("admission queue full (%d executing + %d queued)", s.cfg.MaxConcurrent, s.cfg.QueueDepth)
	}
	s.inflight++
	queued := s.inflight - s.cfg.MaxConcurrent
	s.mu.Unlock()
	if queued < 0 {
		queued = 0
	}
	s.brownout.sample(queued)

	if wait := s.expectedQueueWait(endpoint, queued); wait > 0 {
		if dl, ok := ctx.Deadline(); ok && dl.Sub(s.cfg.now()) < wait {
			s.requestDone()
			s.rec.Counter("serve_sheds").Add(1)
			return nil, errShed,
				fmt.Sprintf("expected queue wait %v exceeds remaining deadline", wait.Round(time.Millisecond))
		}
	}

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.requestDone()
		if k, _ := ctxErrKind(ctx.Err()); k == errClientGone {
			return nil, errClientGone, "client went away while queued"
		}
		return nil, errDeadlineExceeded, "deadline expired while queued"
	}
	s.mu.Lock()
	s.executing++
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.executing--
		s.mu.Unlock()
		<-s.sem
		s.requestDone()
	}, "", ""
}

// requestDone retires one admitted request and completes a pending
// drain when it was the last. Completion also feeds the brown-out
// controller, so pressure relief is observed without any background
// timer: the sample after a quiet recovery window restores full
// quality.
func (s *Server) requestDone() {
	s.mu.Lock()
	s.inflight--
	queued := s.inflight - s.cfg.MaxConcurrent
	if s.draining && s.inflight == 0 && !s.drainClosed {
		s.drainClosed = true
		close(s.drained)
	}
	s.mu.Unlock()
	if queued < 0 {
		queued = 0
	}
	s.brownout.sample(queued)
}

// requestContext derives the per-request deadline: the request's
// timeout_ms clamped to MaxTimeout, or DefaultTimeout when absent. A
// negative timeout means "already expired" and short-circuits before
// admission.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc, bool) {
	if timeoutMS < 0 {
		return nil, nil, false
	}
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, true
}

// timed wraps a handler with method filtering, request counting, and
// per-endpoint latency telemetry. Latency is recorded server-side only
// (recorder phase + percentile tracker) — it never enters the response
// body.
func (s *Server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if ok, retryAfter := s.limiter.allow(clientID(r)); !ok {
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter.Seconds()))))
			s.writeError(w, errRateLimited, "per-client rate limit exceeded", nil)
			return
		}
		s.rec.Counter("serve_requests_" + name).Add(1)
		start := time.Now()
		h(w, r)
		ns := time.Since(start).Nanoseconds()
		s.rec.Phase("serve." + name).AddNS(ns)
		s.lat.observe(name, ns)
	}
}

// handleHealthz reports liveness: 200 for as long as the process can
// serve HTTP at all, draining included. Liveness and readiness are
// deliberately distinct endpoints — an orchestrator restarts a process
// that fails liveness, which is exactly wrong for a server that is
// healthy and finishing its in-flight work; routing decisions belong
// to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
}

// handleReadyz reports readiness to accept new work: 503 from the
// moment Drain begins — before the last in-flight request completes —
// so load balancers stop routing to the instance while it is still
// alive to finish what it already accepted.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "draining"})
		return
	}
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
}

// statszBody is the /statsz response.
type statszBody struct {
	Pool     PoolStats `json:"pool"`
	Inflight int       `json:"inflight"`
	// Executing is how many admitted requests hold an execution slot;
	// Queued is the remainder waiting for one. QueuePressure is
	// Queued/QueueCapacity — the signal the brown-out controller watches.
	Executing     int                       `json:"executing"`
	Queued        int                       `json:"queued"`
	QueueCapacity int                       `json:"queue_capacity"`
	QueuePressure float64                   `json:"queue_pressure"`
	Draining      bool                      `json:"draining"`
	Degraded      bool                      `json:"degraded"`
	Breakers      map[string]string         `json:"breakers,omitempty"`
	Latency       map[string]LatencySummary `json:"latency_ns"`
	Counters      map[string]int64          `json:"counters,omitempty"`
}

// handleStatsz reports pool, admission, resilience, and latency
// statistics.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	inflight := s.inflight
	executing := s.executing
	draining := s.draining
	s.mu.Unlock()
	queued := inflight - executing
	if queued < 0 {
		queued = 0
	}
	pressure := 0.0
	if s.cfg.QueueDepth > 0 {
		pressure = float64(queued) / float64(s.cfg.QueueDepth)
	}
	snap := s.rec.Snapshot()
	writeJSON(w, statszBody{
		Pool:          s.pool.Stats(),
		Inflight:      inflight,
		Executing:     executing,
		Queued:        queued,
		QueueCapacity: s.cfg.QueueDepth,
		QueuePressure: pressure,
		Draining:      draining,
		Degraded:      s.brownout.Degraded(),
		Breakers:      s.breaker.States(),
		Latency:       s.lat.summaries(),
		Counters:      snap.Counters,
	})
}

// LatencySummary is the percentile digest of one endpoint's latency.
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// latencyTracker keeps a bounded reservoir of per-endpoint latency
// samples for percentile reporting. metrics.Histogram is not
// concurrency-safe, so all state lives behind the tracker's mutex.
type latencyTracker struct {
	mu   sync.Mutex
	byEP map[string]*latencyRing
}

// latencyRing is a fixed-capacity overwrite-oldest sample buffer plus a
// coarse histogram (0–100ms) for shape inspection. p50cache holds the
// median digested at sample count p50at, refreshed every
// p50RecomputeEvery samples for the admission-time shed test.
type latencyRing struct {
	samples  []float64
	next     int
	total    int
	hist     *metrics.Histogram
	p50cache float64
	p50at    int
}

const latencyRingCap = 4096

func newLatencyTracker() *latencyTracker {
	return &latencyTracker{byEP: make(map[string]*latencyRing)}
}

func (t *latencyTracker) observe(endpoint string, ns int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.byEP[endpoint]
	if !ok {
		r = &latencyRing{
			samples: make([]float64, 0, latencyRingCap),
			hist:    metrics.NewHistogram(0, 100e6, 50),
		}
		t.byEP[endpoint] = r
	}
	if len(r.samples) < latencyRingCap {
		r.samples = append(r.samples, float64(ns))
	} else {
		r.samples[r.next] = float64(ns)
		r.next = (r.next + 1) % latencyRingCap
	}
	r.total++
	r.hist.Add(float64(ns))
}

// summaries digests every endpoint's reservoir into percentiles.
func (t *latencyTracker) summaries() map[string]LatencySummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]LatencySummary, len(t.byEP))
	for ep, r := range t.byEP {
		xs := append([]float64(nil), r.samples...)
		out[ep] = LatencySummary{
			Count: r.total,
			P50:   metrics.Percentile(xs, 50),
			P95:   metrics.Percentile(xs, 95),
			P99:   metrics.Percentile(xs, 99),
		}
	}
	return out
}

// decodeBody decodes a JSON request body with a size cap and strict
// field checking, so typos in tuning knobs fail loudly instead of
// silently selecting defaults.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, 4<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// ctxErrKind maps a context error to the envelope taxonomy: a deadline
// is the server's own timeout (504), while Canceled means the client
// went away — its own client_gone kind, so disconnects never skew the
// deadline_exceeded counters.
func ctxErrKind(err error) (errKind, bool) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return errDeadlineExceeded, true
	case errors.Is(err, context.Canceled):
		return errClientGone, true
	}
	return "", false
}
