// Package meas implements the paper's sounding and measurement model
// (Sec. III-B): within a TX slot the transmitter dwells on a beam u, the
// receiver steers to a beam v and observes the matched-filter output
//
//	z = √γ · vᴴ·H·u + e,   e ~ CN(0, 1),
//
// where γ = E_s/N₀ is the pre-beamforming SNR and the noise has been
// normalized to unit variance. The measurement energy |z|² is the
// sufficient statistic the covariance estimator consumes (paper Eq. 11),
// with E|z|² = 1 + γ·vᴴ·Q_u·v = γ·vᴴ(Q_u + γ⁻¹I)v, matching the paper's
// λ(Q) up to the γ normalization.
package meas

import (
	"fmt"
	"math"

	"mmwalign/internal/channel"
	"mmwalign/internal/cmat"
	"mmwalign/internal/rng"
)

// Measurement is one sounded beam pair observation.
type Measurement struct {
	// TXBeam and RXBeam are codebook indices of the sounded pair.
	TXBeam, RXBeam int
	// U and V are the beamforming vectors used.
	U, V cmat.Vector
	// Z is the noise-normalized matched-filter output.
	Z complex128
	// Energy is |Z|².
	Energy float64
}

// SNREstimate returns the unbiased post-beamforming SNR estimate from
// this single measurement: |z|² − 1 (the noise floor is 1 after
// normalization), clamped at 0.
func (m Measurement) SNREstimate() float64 {
	s := m.Energy - 1
	if s < 0 {
		return 0
	}
	return s
}

// Prober is the measurement surface an alignment strategy consumes: a
// beam-pair sounder plus the metadata strategies key their estimators
// off. *Sounder is the production implementation; wrappers (e.g. the
// fault-injection sounder used by the robustness test harness) can
// interpose on every measurement while delegating the rest.
type Prober interface {
	// Measure sounds the pair (u, v) with fresh fading per snapshot.
	Measure(txBeam, rxBeam int, u, v cmat.Vector) Measurement
	// MeasureVector takes one full-vector (digital receiver) snapshot.
	MeasureVector(txBeam int, u cmat.Vector) VectorMeasurement
	// TrueSNR returns the ground-truth expected SNR of a pair (for the
	// metric layer only; strategies must not call it).
	TrueSNR(u, v cmat.Vector) float64
	// Gamma returns the pre-beamforming SNR (linear).
	Gamma() float64
	// Snapshots returns the per-measurement snapshot count.
	Snapshots() int
	// SetSnapshots sets the per-measurement snapshot count.
	SetSnapshots(k int)
	// Count returns the number of measurements taken so far.
	Count() int
}

// Sounder performs beam-pair measurements over a channel. It owns the
// measurement-noise and fading randomness so that independent strategy
// runs over the same channel can be made statistically identical.
type Sounder struct {
	ch        *channel.Channel
	gamma     float64
	src       *rng.Source
	snapshots int
	// count tracks how many measurements were taken (cost accounting).
	count int
}

// NewSounder creates a sounder with pre-beamforming SNR gamma = E_s/N₀
// (linear). Returns an error if gamma is not positive.
func NewSounder(ch *channel.Channel, gamma float64, src *rng.Source) (*Sounder, error) {
	if gamma <= 0 {
		return nil, fmt.Errorf("meas: gamma %g must be positive", gamma)
	}
	return &Sounder{ch: ch, gamma: gamma, src: src, snapshots: 1}, nil
}

// SetSnapshots sets the number of independent fading+noise snapshots
// averaged into each measurement's energy (the length of the sounding
// dwell in coherence intervals). More snapshots shrink both the fading
// and noise variance of the energy statistic while keeping its mean at
// λ = 1 + γ·vᴴQ_u·v, so the covariance estimator is unaffected in
// expectation. k < 1 is clamped to 1.
func (s *Sounder) SetSnapshots(k int) {
	if k < 1 {
		k = 1
	}
	s.snapshots = k
}

// Snapshots returns the per-measurement snapshot count.
func (s *Sounder) Snapshots() int { return s.snapshots }

// Gamma returns the pre-beamforming SNR (linear).
func (s *Sounder) Gamma() float64 { return s.gamma }

// Channel returns the underlying channel.
func (s *Sounder) Channel() *channel.Channel { return s.ch }

// Count returns the number of measurements taken so far.
func (s *Sounder) Count() int { return s.count }

// Measure sounds the pair (u, v), drawing a fresh fading realization per
// snapshot — the paper's independently-faded-per-measurement assumption.
// txBeam and rxBeam are carried through for bookkeeping.
func (s *Sounder) Measure(txBeam, rxBeam int, u, v cmat.Vector) Measurement {
	s.count++
	var energy float64
	var last complex128
	sg := complex(math.Sqrt(s.gamma), 0)
	sample := s.ch.ResponseSampler(u, v)
	for k := 0; k < s.snapshots; k++ {
		last = sg*sample(s.src) + s.src.ComplexNormal(1)
		energy += real(last)*real(last) + imag(last)*imag(last)
	}
	return Measurement{
		TXBeam: txBeam,
		RXBeam: rxBeam,
		U:      u,
		V:      v,
		Z:      last,
		Energy: energy / float64(s.snapshots),
	}
}

// MeasureWithChannel sounds the pair against a caller-supplied channel
// matrix (used by MAC simulations that keep H coherent within a slot or
// evolve it with aging). The fading is frozen to h; only the noise is
// averaged across snapshots.
func (s *Sounder) MeasureWithChannel(txBeam, rxBeam int, u, v cmat.Vector, h *cmat.Matrix) Measurement {
	s.count++
	var energy float64
	var last complex128
	for k := 0; k < s.snapshots; k++ {
		last = s.snapshot(u, v, h)
		energy += real(last)*real(last) + imag(last)*imag(last)
	}
	return Measurement{
		TXBeam: txBeam,
		RXBeam: rxBeam,
		U:      u,
		V:      v,
		Z:      last,
		Energy: energy / float64(s.snapshots),
	}
}

// snapshot produces one noise-normalized matched-filter output.
func (s *Sounder) snapshot(u, v cmat.Vector, h *cmat.Matrix) complex128 {
	sig := v.Dot(h.MulVec(u))
	return complex(math.Sqrt(s.gamma), 0)*sig + s.src.ComplexNormal(1)
}

// VectorMeasurement is one full-vector (digital beamforming) snapshot:
// the receiver observes every antenna element at once instead of a
// single beamformed scalar. This is the observation model of a
// fully-digital receiver front end — one RF chain per antenna — used as
// the upper-bound comparator for the paper's analog architecture.
type VectorMeasurement struct {
	// TXBeam is the codebook index of the transmit beam.
	TXBeam int
	// U is the transmit beamforming vector used.
	U cmat.Vector
	// Y is the noise-normalized received vector √γ·H·u + n, n ~ CN(0,I).
	Y cmat.Vector
}

// MeasureVector takes one digital snapshot under TX beam u, drawing a
// fresh fading realization. It consumes one measurement slot (the
// digital receiver's advantage is bandwidth per slot, not slot count).
func (s *Sounder) MeasureVector(txBeam int, u cmat.Vector) VectorMeasurement {
	s.count++
	h := s.ch.Sample(s.src)
	y := h.MulVec(u).Scale(complex(math.Sqrt(s.gamma), 0))
	n := s.ch.RX.Elements()
	for i := 0; i < n; i++ {
		y[i] += s.src.ComplexNormal(1)
	}
	return VectorMeasurement{TXBeam: txBeam, U: u, Y: y}
}

// TrueSNR returns the ground-truth expected post-beamforming SNR of the
// pair: γ·E|vᴴHu|². Strategies must not call this; it exists for the
// metric layer (SNR-loss evaluation, Eq. 31).
func (s *Sounder) TrueSNR(u, v cmat.Vector) float64 {
	return s.gamma * s.ch.MeanPairGain(u, v)
}

var _ Prober = (*Sounder)(nil)
