package meas

import (
	"math"
	"testing"

	"mmwalign/internal/antenna"
	"mmwalign/internal/channel"
	"mmwalign/internal/rng"
)

func fixture(t *testing.T, gamma float64) (*Sounder, *channel.Channel) {
	t.Helper()
	tx, rx := antenna.NewUPA(4, 4), antenna.NewUPA(8, 8)
	ch, err := channel.NewSinglePath(rng.New(100), tx, rx, channel.SinglePathSpec{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSounder(ch, gamma, rng.New(101))
	if err != nil {
		t.Fatal(err)
	}
	return s, ch
}

func TestNewSounderRejectsBadGamma(t *testing.T) {
	_, ch := fixture(t, 1)
	for _, gamma := range []float64{0, -1} {
		if _, err := NewSounder(ch, gamma, rng.New(1)); err == nil {
			t.Errorf("gamma=%g: expected error", gamma)
		}
	}
}

func TestMeasureCountsAndMetadata(t *testing.T) {
	s, ch := fixture(t, 1)
	u := ch.TX.Steering(antenna.Direction{})
	v := ch.RX.Steering(antenna.Direction{})
	m := s.Measure(3, 7, u, v)
	if m.TXBeam != 3 || m.RXBeam != 7 {
		t.Errorf("beam metadata = (%d,%d), want (3,7)", m.TXBeam, m.RXBeam)
	}
	if s.Count() != 1 {
		t.Errorf("Count = %d, want 1", s.Count())
	}
	s.Measure(0, 0, u, v)
	if s.Count() != 2 {
		t.Errorf("Count = %d, want 2", s.Count())
	}
	if math.Abs(m.Energy-(real(m.Z)*real(m.Z)+imag(m.Z)*imag(m.Z))) > 1e-12 {
		t.Error("Energy != |Z|²")
	}
}

func TestMeasureMeanEnergyMatchesModel(t *testing.T) {
	// E|z|² = 1 + γ·E|vᴴHu|² = 1 + TrueSNR.
	gamma := 0.01
	s, ch := fixture(t, gamma)
	u := ch.TX.Steering(ch.Paths[0].AoD)
	v := ch.RX.Steering(ch.Paths[0].AoA)
	want := 1 + s.TrueSNR(u, v)

	const trials = 5000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += s.Measure(0, 0, u, v).Energy
	}
	got := sum / trials
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("mean energy = %g, want %g", got, want)
	}
}

func TestTrueSNRMatchedPair(t *testing.T) {
	gamma := 2.0
	s, ch := fixture(t, gamma)
	u := ch.TX.Steering(ch.Paths[0].AoD)
	v := ch.RX.Steering(ch.Paths[0].AoA)
	// Matched single path: E|vᴴHu|² = M·N.
	want := gamma * 16 * 64
	if got := s.TrueSNR(u, v); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("TrueSNR = %g, want %g", got, want)
	}
}

func TestSNREstimateClampedAtZero(t *testing.T) {
	m := Measurement{Energy: 0.5}
	if got := m.SNREstimate(); got != 0 {
		t.Errorf("SNREstimate = %g, want 0", got)
	}
	m = Measurement{Energy: 3.5}
	if got := m.SNREstimate(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("SNREstimate = %g, want 2.5", got)
	}
}

func TestSNREstimateUnbiased(t *testing.T) {
	gamma := 0.05
	s, ch := fixture(t, gamma)
	u := ch.TX.Steering(ch.Paths[0].AoD)
	v := ch.RX.Steering(ch.Paths[0].AoA)
	want := s.TrueSNR(u, v)
	const trials = 5000
	var sum float64
	for i := 0; i < trials; i++ {
		// Average the raw (unclamped) estimator to check bias.
		sum += s.Measure(0, 0, u, v).Energy - 1
	}
	got := sum / trials
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("mean SNR estimate = %g, want %g", got, want)
	}
}

func TestMeasureWithChannelDeterministicSignal(t *testing.T) {
	// With a supplied H and enormous gamma the noise is negligible and
	// the energy is γ|vᴴHu|² — checks the signal path end to end.
	s, ch := fixture(t, 1e9)
	u := ch.TX.Steering(ch.Paths[0].AoD)
	v := ch.RX.Steering(ch.Paths[0].AoA)
	h := ch.Sample(rng.New(7))
	m := s.MeasureWithChannel(0, 0, u, v, h)
	sig := v.Dot(h.MulVec(u))
	want := 1e9 * (real(sig)*real(sig) + imag(sig)*imag(sig))
	if math.Abs(m.Energy-want)/want > 1e-3 {
		t.Errorf("energy = %g, want %g", m.Energy, want)
	}
}

func TestMeasureVectorModel(t *testing.T) {
	// E[y yᴴ] = γ·Q_u + I; verify the total power E‖y‖² = γ·tr(Q_u) + N.
	gamma := 0.5
	s, ch := fixture(t, gamma)
	u := ch.TX.Steering(ch.Paths[0].AoD)
	qU := ch.RXCovariance(u)
	want := gamma*real(qU.Trace()) + float64(ch.RX.Elements())

	const trials = 2000
	var sum float64
	for i := 0; i < trials; i++ {
		vm := s.MeasureVector(3, u)
		if vm.TXBeam != 3 || len(vm.Y) != 64 {
			t.Fatalf("bad measurement metadata: %+v", vm.TXBeam)
		}
		for _, y := range vm.Y {
			sum += real(y)*real(y) + imag(y)*imag(y)
		}
	}
	got := sum / trials
	if diff := (got - want) / want; diff > 0.1 || diff < -0.1 {
		t.Errorf("E‖y‖² = %g, want %g", got, want)
	}
}

func TestMeasureVectorCountsSlots(t *testing.T) {
	s, ch := fixture(t, 1)
	u := ch.TX.Steering(ch.Paths[0].AoD)
	before := s.Count()
	s.MeasureVector(0, u)
	if s.Count() != before+1 {
		t.Errorf("Count = %d, want %d", s.Count(), before+1)
	}
}

func TestMeasurementsVaryAcrossFades(t *testing.T) {
	s, ch := fixture(t, 1)
	u := ch.TX.Steering(ch.Paths[0].AoD)
	v := ch.RX.Steering(ch.Paths[0].AoA)
	m1 := s.Measure(0, 0, u, v)
	m2 := s.Measure(0, 0, u, v)
	if m1.Z == m2.Z {
		t.Error("two measurements produced identical outputs")
	}
}
