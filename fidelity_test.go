package mmwalign

// The fidelity smoke test is the cheap always-on counterpart of
// cmd/benchdiff: it re-runs the regression-guarded workloads once and
// asserts their fidelity metrics (not their speed) against the seeded
// BENCH_<name>.json baselines. A solver "optimization" that changes the
// numbers the paper's figures are made of fails here in plain
// `go test ./...`, without anyone having to run the benchmark tool.

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"mmwalign/internal/benchsuite"
)

// benchBaseline mirrors the cmd/benchdiff baseline file schema (only
// the fields the smoke test needs).
type benchBaseline struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

func loadBaseline(t *testing.T, name string) benchBaseline {
	t.Helper()
	raw, err := os.ReadFile("BENCH_" + name + ".json")
	if err != nil {
		t.Skipf("no recorded baseline for %s: %v (run `go run ./cmd/benchdiff -record`)", name, err)
	}
	var b benchBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("baseline %s: %v", name, err)
	}
	return b
}

// checkMetric applies benchdiff's default fidelity tolerance: within 5%
// relative or 0.05 absolute of the baseline value.
func checkMetric(t *testing.T, workload, metric string, got, want float64) {
	t.Helper()
	const relTol, absTol = 0.05, 0.05
	diff := math.Abs(got - want)
	if diff <= absTol || diff <= relTol*math.Abs(want) {
		return
	}
	t.Errorf("%s %s = %g, baseline %g (drift %g exceeds %g%% rel / %g abs)",
		workload, metric, got, want, diff, relTol*100, absTol)
}

func TestFidelitySmokeEstimate(t *testing.T) {
	if testing.Short() {
		t.Skip("fidelity smoke in -short mode")
	}
	base := loadBaseline(t, "estimate")
	est, obs := benchsuite.EstimateFixture()
	_, stats, err := est.Estimate(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkMetric(t, "estimate", "objective", stats.Objective, base.Metrics["objective"])
	checkMetric(t, "estimate", "iters", float64(stats.Iters), base.Metrics["iters"])
	checkMetric(t, "estimate", "eig_decomps", float64(stats.EigenDecomps), base.Metrics["eig_decomps"])
}

func TestFidelitySmokeFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("fidelity smoke in -short mode")
	}
	for _, tc := range []struct {
		figure int
		name   string
		metric string
	}{
		{5, "fig5", "loss_dB"},
		{7, "fig7", "rate_at_3dB"},
	} {
		base := loadBaseline(t, tc.name)
		got, err := benchsuite.RunFigure(tc.figure)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		checkMetric(t, tc.name, tc.metric, got, base.Metrics[tc.metric])
	}
}
