module mmwalign

go 1.22
