package main

import (
	"net/http"
	"testing"
	"time"
)

// TestNewHTTPServerTimeouts pins the transport hardening: the
// constructed server must carry the slowloris bounds, not the zero
// values net/http defaults to (which never time a connection out).
func TestNewHTTPServerTimeouts(t *testing.T) {
	mux := http.NewServeMux()
	srv := newHTTPServer(mux, 5*time.Second, 30*time.Second, 0, 2*time.Minute)
	if srv.Handler != http.Handler(mux) {
		t.Error("handler not threaded through")
	}
	if got := srv.ReadHeaderTimeout; got != 5*time.Second {
		t.Errorf("ReadHeaderTimeout = %v, want 5s", got)
	}
	if got := srv.ReadTimeout; got != 30*time.Second {
		t.Errorf("ReadTimeout = %v, want 30s", got)
	}
	if got := srv.WriteTimeout; got != 0 {
		t.Errorf("WriteTimeout = %v, want 0 (off: it would cap long app-level deadlines)", got)
	}
	if got := srv.IdleTimeout; got != 2*time.Minute {
		t.Errorf("IdleTimeout = %v, want 2m", got)
	}
}

func TestParseInject(t *testing.T) {
	spec, err := parseInject("nan=0.25,nan-requests=4,panic-requests=2,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if spec.pNaN != 0.25 || spec.nanReqs != 4 || spec.panicReqs != 2 || spec.seed != 7 {
		t.Errorf("spec = %+v, want {0.25 4 2 7}", spec)
	}

	for _, bad := range []string{
		"nan",           // no value
		"nan=2",         // probability out of range
		"nan=x",         // not a number
		"panics=3",      // unknown key
		"nan-requests=", // empty value
	} {
		if _, err := parseInject(bad); err == nil {
			t.Errorf("parseInject(%q) accepted, want error", bad)
		}
	}
}

// TestInjectWrapperOrdering pins the request-ordered fault schedule:
// panics first, then fully NaN-poisoned runs, then pass-through (or the
// persistent probabilistic wrapper when nan= is set).
func TestInjectWrapperOrdering(t *testing.T) {
	spec := injectSpec{panicReqs: 1, nanReqs: 2}
	wrap := spec.wrapper()
	if _, ok := wrap(nil).(*panicProber); !ok {
		t.Error("request 1 not a panic prober")
	}
	for i := 2; i <= 3; i++ {
		if p := wrap(nil); p == nil {
			t.Errorf("request %d: nil prober, want NaN injector", i)
		} else if _, ok := p.(*panicProber); ok {
			t.Errorf("request %d: panic prober, want NaN injector", i)
		}
	}
	if p := wrap(nil); p != nil {
		t.Errorf("request 4 wrapped (%T), want untouched pass-through", p)
	}
}
