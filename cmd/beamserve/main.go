// Command beamserve runs the beam-alignment HTTP/JSON service: pooled
// estimator workspaces and packed codebook scorers stay warm across
// requests, admission is bounded with 503 + Retry-After backpressure,
// and SIGTERM drains gracefully (in-flight requests complete, new ones
// are rejected). Under overload the server sheds doomed requests,
// rate-limits greedy clients, trips a circuit breaker on failing
// estimator specs, and brown-outs /v1/align to scan-order responses —
// see the -rate, -breaker-*, and -brownout-* flags.
//
// Usage:
//
//	beamserve -addr :8080 -max-concurrent 4 -queue 8
//
// Endpoints:
//
//	POST /v1/estimate  covariance estimation + beam ranking from energies
//	POST /v1/align     full simulated alignment run (seeded, deterministic)
//	GET  /healthz      liveness (always 200 while the process serves)
//	GET  /readyz       readiness (503 from the moment draining begins)
//	GET  /statsz       pool, admission, resilience, and latency statistics
//	GET  /debug/vars   expvar, including the server telemetry recorder
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"mmwalign/internal/cmat"
	"mmwalign/internal/faultinject"
	"mmwalign/internal/meas"
	"mmwalign/internal/obs"
	"mmwalign/internal/rng"
	"mmwalign/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "beamserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		maxConc  = flag.Int("max-concurrent", 4, "requests executing simultaneously")
		queue    = flag.Int("queue", 8, "requests allowed to wait beyond the concurrency limit")
		timeout  = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTO    = flag.Duration("max-timeout", 60*time.Second, "cap on request-supplied deadlines")
		retrySec = flag.Int("retry-after", 1, "floor for Retry-After seconds on backpressure responses")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")

		// Transport hardening: a slowloris peer dribbling header bytes
		// holds a connection, not a request slot — these bound how long.
		readHeaderTO = flag.Duration("read-header-timeout", 5*time.Second, "max time to read a request's headers")
		readTO       = flag.Duration("read-timeout", 30*time.Second, "max time to read a full request")
		writeTO      = flag.Duration("write-timeout", 0, "max time to write a response (0 = none; must exceed -max-timeout when set)")
		idleTO       = flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")

		// Overload resilience.
		rate            = flag.Float64("rate", 0, "per-client sustained requests/second (0 = rate limiting off)")
		rateBurst       = flag.Int("rate-burst", 0, "per-client burst capacity (0 = ceil of -rate)")
		rateClients     = flag.Int("rate-clients", 4096, "max tracked rate-limit buckets (LRU beyond)")
		breakerThresh   = flag.Int("breaker-threshold", 5, "consecutive estimation failures that trip the circuit (negative = breaker off)")
		breakerCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit wait before a half-open probe")
		brownoutFrac    = flag.Float64("brownout-frac", 0.75, "queue-occupancy fraction that arms brown-out (negative = brown-out off)")
		brownoutAfter   = flag.Duration("brownout-after", 2*time.Second, "sustained pressure before /v1/align degrades to scan-order")
		brownoutRecover = flag.Duration("brownout-recover", 2*time.Second, "sustained quiet before full estimation resumes")

		inject = flag.String("inject", "", "fault injection for chaos testing, e.g. nan=0.05,nan-requests=4,panic-requests=2,seed=1")
	)
	flag.Parse()

	cfg := serve.Config{
		MaxConcurrent:       *maxConc,
		QueueDepth:          *queue,
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTO,
		RetryAfterSeconds:   *retrySec,
		RateLimitPerSec:     *rate,
		RateLimitBurst:      *rateBurst,
		RateLimitMaxClients: *rateClients,
		BreakerThreshold:    *breakerThresh,
		BreakerCooldown:     *breakerCooldown,
		BrownoutQueueFrac:   *brownoutFrac,
		BrownoutAfter:       *brownoutAfter,
		BrownoutRecover:     *brownoutRecover,
	}
	if *inject != "" {
		spec, err := parseInject(*inject)
		if err != nil {
			return err
		}
		cfg.WrapProber = spec.wrapper()
		fmt.Printf("beamserve: fault injection active (%s)\n", *inject)
	}
	srv := serve.NewServer(cfg)
	obs.Publish("beamserve", srv.Recorder())

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("/debug/vars", http.DefaultServeMux)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := newHTTPServer(mux, *readHeaderTO, *readTO, *writeTO, *idleTO)
	fmt.Printf("beamserve: listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	// SIGINT/SIGTERM starts the drain: the app-level server stops
	// admitting, in-flight requests run to completion (bounded by
	// -drain-timeout), then the HTTP listener shuts down.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}
	fmt.Println("beamserve: draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "beamserve: drain incomplete:", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Println("beamserve: drained cleanly")
	return nil
}

// newHTTPServer builds the transport-hardened http.Server. Separated
// from run so the timeout wiring is unit-testable: ReadHeaderTimeout is
// the slowloris bound (a peer dribbling header bytes is cut off),
// ReadTimeout bounds the whole request read, IdleTimeout reaps
// keep-alive connections, and WriteTimeout stays off by default because
// it would cap response writing below the app-level -max-timeout.
func newHTTPServer(h http.Handler, readHeaderTO, readTO, writeTO, idleTO time.Duration) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTO,
		ReadTimeout:       readTO,
		WriteTimeout:      writeTO,
		IdleTimeout:       idleTO,
	}
}

// injectSpec is the parsed -inject flag: deterministic fault injection
// for the chaos-soak harness. nan-requests / panic-requests poison the
// first K wrapped alignment runs outright (NaN energies, or a panic on
// the first measurement); nan= adds a persistent per-measurement NaN
// probability for every later run.
type injectSpec struct {
	pNaN      float64
	nanReqs   int64
	panicReqs int64
	seed      int64
}

// parseInject parses the comma-separated key=value -inject syntax.
func parseInject(s string) (injectSpec, error) {
	var spec injectSpec
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return spec, fmt.Errorf("-inject %q: want key=value, got %q", s, part)
		}
		var err error
		switch key {
		case "nan":
			spec.pNaN, err = strconv.ParseFloat(val, 64)
			if err == nil && (spec.pNaN < 0 || spec.pNaN > 1) {
				err = fmt.Errorf("probability %v out of [0,1]", spec.pNaN)
			}
		case "nan-requests":
			spec.nanReqs, err = strconv.ParseInt(val, 10, 64)
		case "panic-requests":
			spec.panicReqs, err = strconv.ParseInt(val, 10, 64)
		case "seed":
			spec.seed, err = strconv.ParseInt(val, 10, 64)
		default:
			err = fmt.Errorf("unknown key (want nan, nan-requests, panic-requests, seed)")
		}
		if err != nil {
			return spec, fmt.Errorf("-inject %q: %s: %v", s, key, err)
		}
	}
	return spec, nil
}

// wrapper returns the serve.Config.WrapProber hook: an atomic counter
// orders the wrapped runs, so "the first K requests fail" is exact
// regardless of server concurrency.
func (spec injectSpec) wrapper() func(meas.Prober) meas.Prober {
	var n atomic.Int64
	return func(p meas.Prober) meas.Prober {
		i := n.Add(1)
		switch {
		case i <= spec.panicReqs:
			return &panicProber{Prober: p}
		case i <= spec.panicReqs+spec.nanReqs:
			return faultinject.New(p, faultinject.Config{PNaN: 1, Seed: spec.seed},
				rng.New(spec.seed).SplitIndexed("inject-nan", int(i)))
		case spec.pNaN > 0:
			return faultinject.New(p, faultinject.Config{PNaN: spec.pNaN, Seed: spec.seed},
				rng.New(spec.seed).SplitIndexed("inject-rand", int(i)))
		default:
			return p
		}
	}
}

// panicProber panics on the first measurement — the injected crash the
// server's panic recovery must absorb without dying.
type panicProber struct {
	meas.Prober
}

func (p *panicProber) Measure(txBeam, rxBeam int, u, v cmat.Vector) meas.Measurement {
	panic("faultinject: injected measurement panic")
}
