// Command beamserve runs the beam-alignment HTTP/JSON service: pooled
// estimator workspaces and packed codebook scorers stay warm across
// requests, admission is bounded with 503 + Retry-After backpressure,
// and SIGTERM drains gracefully (in-flight requests complete, new ones
// are rejected).
//
// Usage:
//
//	beamserve -addr :8080 -max-concurrent 4 -queue 8
//
// Endpoints:
//
//	POST /v1/estimate  covariance estimation + beam ranking from energies
//	POST /v1/align     full simulated alignment run (seeded, deterministic)
//	GET  /healthz      liveness (always 200 while the process serves)
//	GET  /readyz       readiness (503 from the moment draining begins)
//	GET  /statsz       pool, admission, and latency statistics
//	GET  /debug/vars   expvar, including the server telemetry recorder
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mmwalign/internal/obs"
	"mmwalign/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "beamserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		maxConc  = flag.Int("max-concurrent", 4, "requests executing simultaneously")
		queue    = flag.Int("queue", 8, "requests allowed to wait beyond the concurrency limit")
		timeout  = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTO    = flag.Duration("max-timeout", 60*time.Second, "cap on request-supplied deadlines")
		retrySec = flag.Int("retry-after", 1, "Retry-After seconds on 503 responses")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	)
	flag.Parse()

	srv := serve.NewServer(serve.Config{
		MaxConcurrent:     *maxConc,
		QueueDepth:        *queue,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTO,
		RetryAfterSeconds: *retrySec,
	})
	obs.Publish("beamserve", srv.Recorder())

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("/debug/vars", http.DefaultServeMux)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: mux}
	fmt.Printf("beamserve: listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	// SIGINT/SIGTERM starts the drain: the app-level server stops
	// admitting, in-flight requests run to completion (bounded by
	// -drain-timeout), then the HTTP listener shuts down.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}
	fmt.Println("beamserve: draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "beamserve: drain incomplete:", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Println("beamserve: drained cleanly")
	return nil
}
