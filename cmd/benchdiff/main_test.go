package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRelDeltaZeroBaseline(t *testing.T) {
	// 0→0 is a clean non-regression; 0→k is a regression reported by its
	// absolute delta. Neither may produce Inf or NaN anywhere.
	zz := relDelta(0, 0)
	if zz.fromZero || zz.exceeds(0.10) {
		t.Errorf("0→0 flagged as regression: %+v", zz)
	}
	if got := zz.String(); got != "+0.0%" {
		t.Errorf("0→0 renders as %q, want +0.0%%", got)
	}

	zk := relDelta(3, 0)
	if !zk.fromZero || !zk.exceeds(math.MaxFloat64) {
		t.Errorf("0→3 not flagged as regression: %+v", zk)
	}
	if got := zk.String(); !strings.Contains(got, "from zero baseline") || strings.Contains(got, "Inf") {
		t.Errorf("0→3 renders as %q", got)
	}

	for _, d := range []delta{zz, zk, relDelta(5, 4), relDelta(0, 4)} {
		if math.IsInf(d.rel, 0) || math.IsNaN(d.rel) || math.IsInf(d.abs, 0) || math.IsNaN(d.abs) {
			t.Errorf("delta carries non-finite values: %+v", d)
		}
	}
	if d := relDelta(0, 4); d.rel != -1 || d.exceeds(0.10) {
		t.Errorf("k→0 improvement misreported: %+v", d)
	}
}

func TestDiffZeroBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := Baseline{
		Name:        "estimate",
		Iterations:  100,
		NsPerOp:     1000,
		AllocsPerOp: 0, // the hot path's real baseline since the zero-alloc rewrite
		BytesPerOp:  0,
		Metrics:     map[string]float64{"objective": 1.25},
	}
	if err := writeBaseline(dir, base); err != nil {
		t.Fatalf("writeBaseline: %v", err)
	}
	back, err := readBaseline(dir, "estimate")
	if err != nil {
		t.Fatalf("readBaseline: %v", err)
	}
	if back.Name != base.Name || back.AllocsPerOp != 0 || back.Metrics["objective"] != 1.25 {
		t.Fatalf("round trip lost data: %+v", back)
	}

	// Unchanged zero allocations must pass.
	var buf bytes.Buffer
	cur := back
	cur.NsPerOp = 1100
	if !diff(&buf, back, cur, 0.25, 0.10, 0.05, 0.05, 1.5) {
		t.Errorf("0→0 allocs failed the diff:\n%s", buf.String())
	}

	// Allocations appearing on a zero baseline must fail, with the
	// absolute delta in the report instead of Inf.
	buf.Reset()
	cur.AllocsPerOp = 3
	if diff(&buf, back, cur, 0.25, 0.10, 0.05, 0.05, 1.5) {
		t.Errorf("0→3 allocs passed the diff:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "from zero baseline") || !strings.Contains(out, "FAIL") {
		t.Errorf("missing zero-baseline failure report:\n%s", out)
	}
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Errorf("diff printed non-finite deltas:\n%s", out)
	}
}

// TestNonFiniteValuesHardFail is the regression test for the silent-PASS
// bug: a NaN anywhere made delta.rel (or the metric drift) NaN, every
// `> tol` comparison on it false, and the diff reported success on a
// broken run. Non-finite values must FAIL with explicit text instead.
func TestNonFiniteValuesHardFail(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)

	// The delta layer: every NaN/Inf placement must exceed any tolerance.
	for _, tc := range [][2]float64{{nan, 1000}, {1000, nan}, {nan, nan}, {inf, 1000}, {1000, inf}, {nan, 0}, {0, nan}} {
		d := relDelta(tc[0], tc[1])
		if !d.nonFinite || !d.exceeds(math.MaxFloat64) {
			t.Errorf("relDelta(%g, %g) = %+v did not hard-fail", tc[0], tc[1], d)
		}
		if got := d.String(); !strings.Contains(got, "non-finite") {
			t.Errorf("relDelta(%g, %g) renders as %q, want non-finite text", tc[0], tc[1], got)
		}
	}

	base := Baseline{
		Name:       "estimate",
		Iterations: 10,
		NsPerOp:    1000,
		Metrics:    map[string]float64{"objective": 1.25, "p95_ns": 2e6},
	}

	// NaN ns/op in the current run: before the fix, rel=NaN > tol was
	// false and this passed.
	cur := base
	cur.NsPerOp = nan
	var buf bytes.Buffer
	if diff(&buf, base, cur, 0.25, 0.10, 0.05, 0.05, 1.5) {
		t.Errorf("NaN ns/op passed the diff:\n%s", buf.String())
	}
	if out := buf.String(); !strings.Contains(out, "non-finite value") || !strings.Contains(out, "FAIL") {
		t.Errorf("NaN ns/op failure not reported explicitly:\n%s", out)
	}

	// NaN fidelity metric: drift=NaN compared false against both
	// tolerances and passed.
	for _, bad := range []float64{nan, inf} {
		cur = base
		cur.Metrics = map[string]float64{"objective": bad, "p95_ns": 2e6}
		buf.Reset()
		if diff(&buf, base, cur, 0.25, 0.10, 0.05, 0.05, 1.5) {
			t.Errorf("metric %g passed the diff:\n%s", bad, buf.String())
		}
		if out := buf.String(); !strings.Contains(out, "non-finite value") || !strings.Contains(out, "FAIL") {
			t.Errorf("metric %g failure not reported explicitly:\n%s", bad, out)
		}
	}

	// NaN latency percentile goes through the delta path and must fail
	// there too.
	cur = base
	cur.Metrics = map[string]float64{"objective": 1.25, "p95_ns": nan}
	buf.Reset()
	if diff(&buf, base, cur, 0.25, 0.10, 0.05, 0.05, 1.5) {
		t.Errorf("NaN p95_ns passed the diff:\n%s", buf.String())
	}

	// A poisoned BASELINE file must not grandfather itself in either.
	badBase := base
	badBase.NsPerOp = nan
	cur = base
	buf.Reset()
	if diff(&buf, badBase, cur, 0.25, 0.10, 0.05, 0.05, 1.5) {
		t.Errorf("NaN baseline ns/op passed the diff:\n%s", buf.String())
	}
}

func TestDiffLatencyMetricsUseLatTol(t *testing.T) {
	// _ns-suffixed metrics are wall-clock percentiles: the tight
	// fidelity drift tolerances (0.05 absolute!) would reject every run,
	// so they must be compared relatively under -lat-tol instead.
	base := Baseline{
		Name:       "serve",
		Iterations: 10,
		NsPerOp:    1e6,
		Metrics: map[string]float64{
			"p95_ns":     2_000_000,
			"best_score": 1.25,
		},
	}

	// A 2x latency excursion is inside the default 1.5 relative
	// tolerance even though the absolute drift is a million ns.
	cur := base
	cur.Metrics = map[string]float64{"p95_ns": 4_000_000, "best_score": 1.25}
	var buf bytes.Buffer
	if !diff(&buf, base, cur, 0.25, 0.10, 0.05, 0.05, 1.5) {
		t.Errorf("2x p95 within lat-tol failed the diff:\n%s", buf.String())
	}

	// A 3x excursion exceeds it and must fail.
	buf.Reset()
	cur.Metrics = map[string]float64{"p95_ns": 6_000_000, "best_score": 1.25}
	if diff(&buf, base, cur, 0.25, 0.10, 0.05, 0.05, 1.5) {
		t.Errorf("3x p95 passed the diff:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "p95_ns") || !strings.Contains(buf.String(), "FAIL") {
		t.Errorf("missing p95_ns failure report:\n%s", buf.String())
	}

	// The fidelity metric keeps its tight tolerance regardless.
	buf.Reset()
	cur.Metrics = map[string]float64{"p95_ns": 2_000_000, "best_score": 1.45}
	if diff(&buf, base, cur, 0.25, 0.10, 0.05, 0.05, 1.5) {
		t.Errorf("best_score drift of 0.2 passed the diff:\n%s", buf.String())
	}
}
