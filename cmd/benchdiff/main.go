// Command benchdiff records and compares benchmark baselines for the
// solver hot path and the figure regenerations.
//
// It runs the shared workloads of internal/benchsuite in-process via
// testing.Benchmark and persists ns/op, allocs/op, bytes/op, and every
// fidelity metric the workload reports (loss_dB, rate_at_3dB,
// objective, …) to BENCH_<name>.json. A later run with -compare checks
// the current tree against those baselines and exits non-zero on any
// speed, allocation, or fidelity regression — the CI gate that keeps
// the hot path honest.
//
// Usage:
//
//	benchdiff -record                 # write BENCH_<name>.json for the default set
//	benchdiff -compare                # compare current tree against the baselines
//	benchdiff -record -bench estimate,eigen -dir .
//	benchdiff -compare -ns-tol 0.25 -alloc-tol 0.05
//
// Fidelity metrics are deterministic functions of the seeded workloads,
// so their tolerance defaults are tight; timing tolerances default
// looser because wall-clock benchmarks are noisy. Metrics with an _ns
// suffix (the serve workload's latency percentiles) are wall-clock too
// and are compared relatively under -lat-tol instead of the fidelity
// drift tolerances.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"mmwalign/internal/benchsuite"
)

// Baseline is the persisted benchmark record for one workload.
type Baseline struct {
	Name        string             `json:"name"`
	Desc        string             `json:"desc,omitempty"`
	GoVersion   string             `json:"go_version,omitempty"`
	RecordedAt  string             `json:"recorded_at,omitempty"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func baselinePath(dir, name string) string {
	return filepath.Join(dir, "BENCH_"+name+".json")
}

// defaultSet is the workload list used when -bench is not given. It
// covers both hot-path kernels and one single-path figure of each kind;
// the multipath figures are available by name.
var defaultSet = []string{"estimate", "eigen", "gemm", "codebook", "serve", "overload", "multicell", "scenario", "fig5", "fig7"}

func main() {
	var (
		record   = flag.Bool("record", false, "run the workloads and write BENCH_<name>.json baselines")
		compare  = flag.Bool("compare", false, "run the workloads and compare against existing baselines")
		list     = flag.Bool("list", false, "list available workloads and exit")
		dir      = flag.String("dir", ".", "directory holding the BENCH_<name>.json files")
		benches  = flag.String("bench", "", "comma-separated workload names (default: "+strings.Join(defaultSet, ",")+")")
		nsTol    = flag.Float64("ns-tol", 0.25, "allowed relative ns/op regression before failing")
		allocTol = flag.Float64("alloc-tol", 0.10, "allowed relative allocs/op regression before failing")
		metRel   = flag.Float64("metric-rel-tol", 0.05, "allowed relative fidelity-metric drift")
		metAbs   = flag.Float64("metric-abs-tol", 0.05, "allowed absolute fidelity-metric drift")
		latTol   = flag.Float64("lat-tol", 1.5, "allowed relative regression for _ns latency metrics (wall-clock percentiles are noisy)")
	)
	flag.Parse()

	if *list {
		for _, w := range benchsuite.All() {
			fmt.Printf("%-10s %s\n", w.Name, w.Desc)
		}
		return
	}
	if *record == *compare {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -record or -compare is required")
		flag.Usage()
		os.Exit(2)
	}

	names := defaultSet
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	failed := false
	for _, name := range names {
		name = strings.TrimSpace(name)
		w, ok := benchsuite.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: unknown workload %q (use -list)\n", name)
			os.Exit(2)
		}
		cur := run(w)
		if *record {
			if err := writeBaseline(*dir, cur); err != nil {
				fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("recorded %s: %.0f ns/op, %d allocs/op, %d B/op%s\n",
				baselinePath(*dir, cur.Name), cur.NsPerOp, cur.AllocsPerOp, cur.BytesPerOp, metricString(cur.Metrics))
			continue
		}
		base, err := readBaseline(*dir, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v (run -record first)\n", err)
			failed = true
			continue
		}
		if !diff(os.Stdout, base, cur, *nsTol, *allocTol, *metRel, *metAbs, *latTol) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// run executes one workload in-process and converts the result.
func run(w benchsuite.Workload) Baseline {
	res := testing.Benchmark(w.Func)
	b := Baseline{
		Name:        w.Name,
		Desc:        w.Desc,
		GoVersion:   runtime.Version(),
		RecordedAt:  time.Now().UTC().Format(time.RFC3339),
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if len(res.Extra) > 0 {
		b.Metrics = make(map[string]float64, len(res.Extra))
		for k, v := range res.Extra {
			b.Metrics[k] = v
		}
	}
	return b
}

func writeBaseline(dir string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(baselinePath(dir, b.Name), append(data, '\n'), 0o644)
}

func readBaseline(dir, name string) (Baseline, error) {
	data, err := os.ReadFile(baselinePath(dir, name))
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("parsing %s: %w", baselinePath(dir, name), err)
	}
	return b, nil
}

// diff prints a comparison and reports whether the current run is within
// tolerance of the baseline.
func diff(out io.Writer, base, cur Baseline, nsTol, allocTol, metRel, metAbs, latTol float64) bool {
	ok := true
	fmt.Fprintf(out, "%s:\n", base.Name)
	nsDelta := relDelta(cur.NsPerOp, base.NsPerOp)
	fmt.Fprintf(out, "  ns/op     %12.0f -> %12.0f  (%s)%s\n",
		base.NsPerOp, cur.NsPerOp, nsDelta, verdict(nsDelta.exceeds(nsTol)))
	if nsDelta.exceeds(nsTol) {
		ok = false
	}
	allocDelta := relDelta(float64(cur.AllocsPerOp), float64(base.AllocsPerOp))
	fmt.Fprintf(out, "  allocs/op %12d -> %12d  (%s)%s\n",
		base.AllocsPerOp, cur.AllocsPerOp, allocDelta, verdict(allocDelta.exceeds(allocTol)))
	if allocDelta.exceeds(allocTol) {
		ok = false
	}
	fmt.Fprintf(out, "  B/op      %12d -> %12d  (%s)\n",
		base.BytesPerOp, cur.BytesPerOp, relDelta(float64(cur.BytesPerOp), float64(base.BytesPerOp)))

	keys := make([]string, 0, len(base.Metrics))
	for k := range base.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bv := base.Metrics[k]
		cv, present := cur.Metrics[k]
		if !present {
			fmt.Fprintf(out, "  %-9s missing in current run  FAIL\n", k)
			ok = false
			continue
		}
		// _ns-suffixed metrics are wall-clock latency percentiles: they
		// flap far beyond the tight fidelity tolerances, so they get the
		// timing-style relative comparison under -lat-tol instead.
		if strings.HasSuffix(k, "_ns") {
			d := relDelta(cv, bv)
			fmt.Fprintf(out, "  %-9s %12.0f -> %12.0f  (%s)%s\n", k, bv, cv, d, verdict(d.exceeds(latTol)))
			if d.exceeds(latTol) {
				ok = false
			}
			continue
		}
		// A NaN on either side makes the drift NaN, and a NaN drift
		// compares false against both tolerances — which would silently
		// PASS a workload that produced garbage. Non-finite values fail
		// hard, with explicit text.
		if !isFinite(cv) || !isFinite(bv) {
			fmt.Fprintf(out, "  %-9s %12.4g -> %12.4g  non-finite value  FAIL\n", k, bv, cv)
			ok = false
			continue
		}
		drift := math.Abs(cv - bv)
		bad := drift > metAbs && drift > metRel*math.Abs(bv)
		fmt.Fprintf(out, "  %-9s %12.4g -> %12.4g  (drift %.3g)%s\n", k, bv, cv, drift, verdict(bad))
		if bad {
			ok = false
		}
	}
	return ok
}

// delta is the baseline→current change of one benchmark quantity. A
// zero baseline has no meaningful relative change — a zero-alloc hot
// path (the solver since the allocation-free rewrite) that starts
// allocating again would otherwise print "+Inf%" — so the zero→nonzero
// case is carried explicitly and reported as an absolute regression.
// A NaN or Inf on either side is carried explicitly too: NaN poisons
// every comparison to false, so `rel > tol` on a NaN delta would read
// as "within tolerance" and silently PASS the exact runs a regression
// gate exists to catch.
type delta struct {
	// rel is (cur-base)/base, valid only when !fromZero && !nonFinite.
	rel float64
	// fromZero marks a nonzero current value against a zero baseline.
	fromZero bool
	// nonFinite marks a NaN/Inf baseline or current value; always a
	// hard failure.
	nonFinite bool
	// abs is cur-base, used to report fromZero regressions.
	abs float64
}

// relDelta compares cur against base; 0→0 is a clean 0% change, 0→k a
// fromZero regression, and any NaN/Inf input a nonFinite hard failure.
// The rel/abs fields are never Inf or NaN.
func relDelta(cur, base float64) delta {
	if !isFinite(cur) || !isFinite(base) {
		return delta{nonFinite: true}
	}
	d := delta{abs: cur - base}
	switch {
	case base != 0:
		d.rel = (cur - base) / base
	case cur != 0:
		d.fromZero = true
	}
	return d
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// exceeds reports whether the change is a regression beyond tol. Any
// growth from a zero baseline is a regression: no finite tolerance can
// express "some fraction of zero". Any non-finite value is a
// regression: a NaN ns/op or metric means the workload (or its
// baseline file) is broken, and must never pass the gate by poisoned
// comparison.
func (d delta) exceeds(tol float64) bool {
	if d.nonFinite || d.fromZero {
		return true
	}
	return d.rel > tol
}

// String renders the change for the diff table.
func (d delta) String() string {
	if d.nonFinite {
		return "non-finite value"
	}
	if d.fromZero {
		return fmt.Sprintf("%+g from zero baseline", d.abs)
	}
	return fmt.Sprintf("%+.1f%%", 100*d.rel)
}

// metricString renders the fidelity metrics for -record output.
func metricString(metrics map[string]float64) string {
	if len(metrics) == 0 {
		return ""
	}
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, ", %s=%.4g", k, metrics[k])
	}
	return sb.String()
}

func verdict(bad bool) string {
	if bad {
		return "  FAIL"
	}
	return ""
}
