// Command beamalign runs a single beam-alignment experiment from the
// command line and reports the selected pair and its quality.
//
// Usage:
//
//	beamalign -scheme proposed -budget 150 -channel multipath -seed 7
//	beamalign -scheme random -rate 0.15 -v
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mmwalign"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "beamalign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scheme    = flag.String("scheme", "proposed", "alignment scheme: proposed|random|scan|exhaustive|hierarchical")
		budget    = flag.Int("budget", 0, "measurement budget in beam pairs (overrides -rate)")
		rate      = flag.Float64("rate", 0.15, "measurement budget as a fraction of all pairs")
		chKind    = flag.String("channel", "singlepath", "channel model: singlepath|multipath")
		seed      = flag.Int64("seed", 1, "random seed")
		snrDB     = flag.Float64("snr", 0, "pre-beamforming SNR Es/N0 in dB")
		snapshots = flag.Int("snapshots", 4, "snapshots per measurement")
		j         = flag.Int("j", 8, "measurements per TX slot (proposed)")
		verbose   = flag.Bool("v", false, "print the loss trajectory")
	)
	flag.Parse()

	spec := mmwalign.LinkSpec{Seed: *seed, SNRdB: *snrDB, Snapshots: *snapshots}
	switch *chKind {
	case "singlepath":
		spec.Channel = mmwalign.ChannelSinglePath
	case "multipath":
		spec.Channel = mmwalign.ChannelNYCMultipath
	default:
		return fmt.Errorf("unknown channel %q", *chKind)
	}

	link, err := mmwalign.NewLink(spec)
	if err != nil {
		return err
	}
	b := *budget
	if b == 0 {
		b = int(math.Ceil(*rate * float64(link.TotalPairs())))
	}

	res, err := link.Align(mmwalign.Scheme(*scheme), b, mmwalign.AlignOptions{J: *j})
	if err != nil {
		return err
	}

	fmt.Printf("scheme:        %s\n", res.Scheme)
	fmt.Printf("budget:        %d of %d pairs (%.1f%%)\n", res.Measurements, link.TotalPairs(), 100*res.SearchRate)
	fmt.Printf("selected pair: TX beam %d (az %+.1f°, el %+.1f°), RX beam %d (az %+.1f°, el %+.1f°)\n",
		res.TXBeam, res.TXAzDeg, res.TXElDeg, res.RXBeam, res.RXAzDeg, res.RXElDeg)
	fmt.Printf("true SNR:      %.2f dB\n", res.TrueSNRdB)
	fmt.Printf("optimal SNR:   %.2f dB\n", res.OptimalSNRdB)
	fmt.Printf("SNR loss:      %.2f dB\n", res.LossDB)
	if *verbose {
		fmt.Println("\nloss trajectory (dB):")
		for i, l := range res.LossTrajectoryDB {
			if (i+1)%8 == 0 || i == len(res.LossTrajectoryDB)-1 {
				if math.IsInf(l, 1) {
					fmt.Printf("  after %4d measurements: (no pair yet)\n", i+1)
				} else {
					fmt.Printf("  after %4d measurements: %6.2f\n", i+1, l)
				}
			}
		}
	}
	return nil
}
