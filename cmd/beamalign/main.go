// Command beamalign runs a single beam-alignment experiment from the
// command line and reports the selected pair and its quality.
//
// Usage:
//
//	beamalign -scheme proposed -budget 150 -channel multipath -seed 7
//	beamalign -scheme random -rate 0.15 -v
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"mmwalign"
	"mmwalign/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "beamalign:", err)
		os.Exit(1)
	}
}

// backoff returns the capped exponential retry delay: base doubling
// per attempt, capped at 100× base.
func backoff(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < attempt && d < 100*base; i++ {
		d *= 2
	}
	if d > 100*base {
		d = 100 * base
	}
	return d
}

func run() error {
	var (
		scheme    = flag.String("scheme", "proposed", "alignment scheme: proposed|random|scan|exhaustive|hierarchical")
		budget    = flag.Int("budget", 0, "measurement budget in beam pairs (overrides -rate)")
		rate      = flag.Float64("rate", 0.15, "measurement budget as a fraction of all pairs")
		chKind    = flag.String("channel", "singlepath", "channel model: singlepath|multipath")
		seed      = flag.Int64("seed", 1, "random seed")
		snrDB     = flag.Float64("snr", 0, "pre-beamforming SNR Es/N0 in dB")
		snapshots = flag.Int("snapshots", 4, "snapshots per measurement")
		j         = flag.Int("j", 8, "measurements per TX slot (proposed)")
		verbose   = flag.Bool("v", false, "print the loss trajectory")
		timeout   = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		maxFailed = flag.Int("max-failed-drops", 0, "retry budget: re-run a failed alignment up to this many times with fresh randomness")
		retries   = flag.Int("retries", 0, "alias for the retry budget (takes precedence over -max-failed-drops when set)")
		retryWait = flag.Duration("retry-backoff", 0, "delay before the first retry, doubling per attempt (capped at 100x)")
		progress  = flag.Bool("progress", true, "print a live heartbeat on stderr while a long run is in flight")
		counters  = flag.Bool("counters", false, "print phase timings, counters and solver aggregates to stderr and publish them via expvar")
		pprofPfx  = flag.String("pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles")
	)
	flag.Parse()

	// Graceful shutdown: SIGINT/SIGTERM cancels the run at the next
	// measurement or estimation boundary instead of killing the process
	// mid-solve; a second signal kills it the hard way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *pprofPfx != "" {
		cf, err := os.Create(*pprofPfx + ".cpu.pprof")
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			cf.Close()
			hf, err := os.Create(*pprofPfx + ".heap.pprof")
			if err != nil {
				fmt.Fprintln(os.Stderr, "beamalign: create heap profile:", err)
				return
			}
			if err := pprof.Lookup("heap").WriteTo(hf, 0); err != nil {
				fmt.Fprintln(os.Stderr, "beamalign: write heap profile:", err)
			}
			hf.Close()
		}()
	}

	// The recorder rides the context into the alignment strategies; the
	// snapshot is safe to read concurrently, which is what the heartbeat
	// goroutine does for runs long enough to wonder about.
	rec := obs.New()
	ctx = obs.Into(ctx, rec)
	if *counters {
		obs.Publish("beamalign", rec)
	}
	if *progress {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					snap := rec.Snapshot()
					fmt.Fprintf(os.Stderr, "beamalign: %d estimations, %v elapsed\n",
						snap.Solver.Estimations, time.Duration(snap.ElapsedNS).Round(100*time.Millisecond))
				}
			}
		}()
	}

	spec := mmwalign.LinkSpec{Seed: *seed, SNRdB: *snrDB, Snapshots: *snapshots}
	switch *chKind {
	case "singlepath":
		spec.Channel = mmwalign.ChannelSinglePath
	case "multipath":
		spec.Channel = mmwalign.ChannelNYCMultipath
	default:
		return fmt.Errorf("unknown channel %q", *chKind)
	}

	link, err := mmwalign.NewLink(spec)
	if err != nil {
		return err
	}
	b := *budget
	if b == 0 {
		b = int(math.Ceil(*rate * float64(link.TotalPairs())))
	}

	// Each retry re-runs on the same channel with fresh measurement noise
	// and strategy randomness; cancellation and deadline errors are not
	// retryable.
	budgetRetries := *maxFailed
	if *retries > 0 {
		budgetRetries = *retries
	}
	var res mmwalign.Result
	for attempt := 0; ; attempt++ {
		res, err = link.AlignContext(ctx, mmwalign.Scheme(*scheme), b, mmwalign.AlignOptions{J: *j})
		if err == nil {
			break
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if errors.Is(err, context.Canceled) {
				return fmt.Errorf("interrupted: %w", err)
			}
			return fmt.Errorf("timed out after %v: %w", *timeout, err)
		}
		if attempt >= budgetRetries {
			return err
		}
		fmt.Fprintf(os.Stderr, "beamalign: attempt %d failed (%v), retrying\n", attempt+1, err)
		if delay := backoff(*retryWait, attempt); delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("interrupted during retry backoff: %w", ctx.Err())
			case <-t.C:
			}
		}
	}

	if *counters {
		if err := rec.Snapshot().WriteText(os.Stderr); err != nil {
			return err
		}
	}

	fmt.Printf("scheme:        %s\n", res.Scheme)
	fmt.Printf("budget:        %d of %d pairs (%.1f%%)\n", res.Measurements, link.TotalPairs(), 100*res.SearchRate)
	fmt.Printf("selected pair: TX beam %d (az %+.1f°, el %+.1f°), RX beam %d (az %+.1f°, el %+.1f°)\n",
		res.TXBeam, res.TXAzDeg, res.TXElDeg, res.RXBeam, res.RXAzDeg, res.RXElDeg)
	fmt.Printf("true SNR:      %.2f dB\n", res.TrueSNRdB)
	fmt.Printf("optimal SNR:   %.2f dB\n", res.OptimalSNRdB)
	fmt.Printf("SNR loss:      %.2f dB\n", res.LossDB)
	if *verbose {
		fmt.Println("\nloss trajectory (dB):")
		for i, l := range res.LossTrajectoryDB {
			if (i+1)%8 == 0 || i == len(res.LossTrajectoryDB)-1 {
				if math.IsInf(l, 1) {
					fmt.Printf("  after %4d measurements: (no pair yet)\n", i+1)
				} else {
					fmt.Printf("  after %4d measurements: %6.2f\n", i+1, l)
				}
			}
		}
	}
	return nil
}
