// Command cellular runs the event-driven multi-cell simulation: Poisson
// user arrivals into a square deployment, directional cell search, beam
// tracking over drifting channels, handover, and throughput accounting.
//
// Usage:
//
//	cellular -bs 3 -horizon 120 -rate 0.2 -speed 3
package main

import (
	"flag"
	"fmt"
	"os"

	"mmwalign/internal/mac"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cellular:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		numBS   = flag.Int("bs", 3, "base stations")
		area    = flag.Float64("area", 400, "deployment square side (m)")
		rate    = flag.Float64("rate", 0.1, "UE arrival rate (per second)")
		hold    = flag.Float64("hold", 30, "mean session duration (s)")
		speed   = flag.Float64("speed", 1.5, "UE speed (m/s)")
		horizon = flag.Float64("horizon", 60, "simulated seconds")
		scheme  = flag.String("scheme", "proposed", "alignment scheme")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := mac.CellularConfig{
		Link: mac.LinkConfig{
			Scheme:    *scheme,
			Multipath: true,
		},
		NumBS:       *numBS,
		AreaM:       *area,
		ArrivalRate: *rate,
		MeanHoldS:   *hold,
		SpeedMS:     *speed,
		HorizonS:    *horizon,
		Seed:        *seed,
	}
	stats, err := mac.RunCellular(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("event-driven mmWave cell: %d BSs in %.0fx%.0f m, %g UE/s for %gs (scheme %q)\n\n",
		*numBS, *area, *area, *rate, *horizon, *scheme)
	fmt.Printf("arrivals:            %d\n", stats.Arrivals)
	fmt.Printf("blocked (no BS):     %d\n", stats.Blocked)
	fmt.Printf("sessions completed:  %d\n", stats.Completed)
	fmt.Printf("handovers:           %d\n", stats.Handovers)
	fmt.Printf("full alignments:     %d\n", stats.FullAlignments)
	fmt.Printf("served superframes:  %d (%.1f%% in outage)\n",
		stats.Ticks, 100*safeDiv(float64(stats.OutageTicks), float64(stats.Ticks)))
	fmt.Printf("mean spectral eff.:  %.2f bits/s/Hz (after %.1f%% training airtime)\n",
		stats.MeanSpectralEff, 100*stats.MeanTrainFrac)
	fmt.Printf("simulator events:    %d\n", stats.EventsProcessed)
	return nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
