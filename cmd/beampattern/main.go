// Command beampattern prints antenna-array diagnostics: the azimuth
// pattern cut of a steered beam as an ASCII plot, the half-power
// beamwidth, the peak sidelobe level, and codebook coverage statistics.
// Useful for sanity-checking array and codebook configurations before
// running alignment experiments.
//
// Usage:
//
//	beampattern -nx 8 -nz 8 -az 20 -book 8x8
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"mmwalign/internal/antenna"
	"mmwalign/internal/cmat"
	"mmwalign/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "beampattern:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nx     = flag.Int("nx", 8, "horizontal array elements")
		nz     = flag.Int("nz", 8, "vertical array elements")
		azDeg  = flag.Float64("az", 0, "steering azimuth in degrees")
		elDeg  = flag.Float64("el", 0, "steering elevation in degrees")
		book   = flag.String("book", "8x8", "codebook grid, e.g. 8x8")
		detail = flag.Bool("coverage", true, "print codebook coverage stats")
	)
	flag.Parse()

	ar := antenna.NewUPA(*nx, *nz)
	dir := antenna.Direction{Az: *azDeg * math.Pi / 180, El: *elDeg * math.Pi / 180}
	w := ar.Steering(dir)

	fmt.Printf("array: %s, steered to az %.1f°, el %.1f°\n\n", ar, *azDeg, *elDeg)

	cut := PatternSeries(ar, w, dir.El)
	if err := metrics.PlotASCII(os.Stdout, "azimuth pattern cut (dB vs degrees)",
		[]metrics.Series{cut}, 72, 16); err != nil {
		return err
	}

	hpbw := antenna.HalfPowerBeamwidth(ar, w, dir.El) * 180 / math.Pi
	psl := antenna.PeakSidelobeDB(ar, w, dir.El)
	fmt.Printf("\nhalf-power beamwidth: %.2f°\n", hpbw)
	fmt.Printf("peak sidelobe level:  %.1f dB\n", psl)

	if *detail {
		bAz, bEl, err := parseGrid(*book)
		if err != nil {
			return err
		}
		cb := antenna.NewGridCodebook(ar, bAz, bEl, math.Pi, math.Pi/2)
		cov := antenna.Coverage(cb, 91, 19)
		fmt.Printf("\ncodebook %s (%d beams):\n", *book, cb.Size())
		fmt.Printf("  worst-direction gain: %.2f dB below matched beam\n", -cov.WorstGainDB)
		fmt.Printf("  mean gain:            %.2f dB below matched beam\n", -cov.MeanGainDB)
	}
	return nil
}

// PatternSeries converts a pattern cut into a plottable series, clamping
// the floor at −40 dB so nulls do not swamp the plot scale.
func PatternSeries(ar antenna.Array, w cmat.Vector, el float64) metrics.Series {
	cut := antenna.PatternCut(ar, w, el, 181)
	s := metrics.Series{Name: "gain"}
	for _, p := range cut {
		g := p.GainDB
		if g < -40 || math.IsInf(g, -1) {
			g = -40
		}
		s.X = append(s.X, p.Az*180/math.Pi)
		s.Y = append(s.Y, g)
	}
	return s
}

func parseGrid(s string) (int, int, error) {
	parts := strings.SplitN(s, "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad grid %q, want e.g. 8x8", s)
	}
	a, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad grid %q: %w", s, err)
	}
	b, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad grid %q: %w", s, err)
	}
	return a, b, nil
}
