// Command cellsearch simulates directional initial access: a mobile
// scanning multiple candidate base stations with a configurable beam
// alignment scheme, reporting per-BS outcomes and association quality
// over many drops.
//
// Usage:
//
//	cellsearch -bs 5 -drops 50 -scheme proposed -budget 96
package main

import (
	"flag"
	"fmt"
	"os"

	"mmwalign/internal/mac"
	"mmwalign/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cellsearch:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		numBS     = flag.Int("bs", 3, "candidate base stations per drop")
		drops     = flag.Int("drops", 20, "independent drops")
		scheme    = flag.String("scheme", "proposed", "alignment scheme")
		budget    = flag.Int("budget", 64, "measurement slots per reachable BS")
		radius    = flag.Float64("radius", 200, "deployment radius in meters")
		seed      = flag.Int64("seed", 1, "random seed")
		multipath = flag.Bool("multipath", true, "use the NYC multipath channel")
	)
	flag.Parse()

	var (
		associated  int
		foundBest   int
		snrSum      float64
		slotsSum    int
		outageDrops int
		snrs        []float64
	)
	hist := metrics.NewHistogram(-20, 60, 8)
	for d := 0; d < *drops; d++ {
		cfg := mac.CellSearchConfig{
			Link: mac.LinkConfig{
				Scheme:    *scheme,
				Multipath: *multipath,
			},
			NumBS:       *numBS,
			Radius:      *radius,
			BudgetPerBS: *budget,
			Seed:        *seed + int64(d)*7919,
		}
		res, err := mac.RunCellSearch(cfg)
		if err != nil {
			return err
		}
		if res.Associated < 0 {
			outageDrops++
			continue
		}
		associated++
		snrSum += res.AssociatedSNRDB
		snrs = append(snrs, res.AssociatedSNRDB)
		hist.Add(res.AssociatedSNRDB)
		slotsSum += res.TotalSlots
		if res.FoundBestBS {
			foundBest++
		}
	}

	fmt.Printf("cell search: %d drops, %d BS each, scheme %q, %d slots/BS\n\n",
		*drops, *numBS, *scheme, *budget)
	fmt.Printf("initial access succeeded:   %d/%d drops (%d all-outage)\n", associated, *drops, outageDrops)
	if associated > 0 {
		fmt.Printf("mean associated SNR:        %.1f dB\n", snrSum/float64(associated))
		fmt.Printf("median associated SNR:      %.1f dB\n", metrics.Median(snrs))
		fmt.Printf("10th pct associated SNR:    %.1f dB\n", metrics.Percentile(snrs, 10))
		fmt.Printf("picked the truly best BS:   %d/%d (%.0f%%)\n",
			foundBest, associated, 100*float64(foundBest)/float64(associated))
		fmt.Printf("mean search duration:       %.0f slots\n\n", float64(slotsSum)/float64(associated))
		if err := hist.WriteASCII(os.Stdout, "associated SNR distribution (dB)", 30); err != nil {
			return err
		}
	}
	return nil
}
