//go:build unix

package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mmwalign/internal/journal"
	"mmwalign/internal/obs"
)

// TestScenarioSIGINTResumeByteIdentity is the mobility engine's
// crash-safety test, the same harness the static figures use: a real
// figgen -scenario process is interrupted mid-sweep with SIGINT, the
// journal tail is additionally torn by hand, and the -resume run must
// render CSVs byte-identical to an uninterrupted run.
func TestScenarioSIGINTResumeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: builds and interrupts a real figgen process")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "figgen")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building figgen: %v\n%s", err, out)
	}

	common := []string{
		"-scenario", "-seed", "5", "-ues", "2", "-frames", "8",
		"-speeds", "2,10,20", "-schemes", "proposed,proposed-warm,exhaustive",
		"-workers", "2", "-progress=false",
	}

	cleanDir := filepath.Join(dir, "clean")
	if err := os.Mkdir(cleanDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	if err := run(append(common, "-outdir", cleanDir), &sink, &sink); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	want := readScenarioCSVs(t, cleanDir)

	// Interrupt a journaled run as soon as at least one cell is on
	// record, so the journal is non-trivial but (very likely)
	// incomplete. Inspect reads without the owner lock, so polling a
	// live writer is safe.
	crashDir := filepath.Join(dir, "crash")
	if err := os.Mkdir(crashDir, 0o755); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "scenario.journal")
	var crashErr bytes.Buffer
	cmd := exec.Command(bin, append(common, "-outdir", crashDir, "-checkpoint", jpath)...)
	cmd.Stdout = &sink
	cmd.Stderr = &crashErr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting figgen: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, done, _, err := journal.Inspect(jpath); err == nil && len(done) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("figgen journaled no cell within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("interrupting figgen: %v", err)
	}
	err = cmd.Wait()
	if err == nil {
		// The whole sweep finished before the signal landed; the resume
		// below then skips every cell, which the byte check still covers.
		t.Log("figgen completed before SIGINT landed")
	} else if !strings.Contains(crashErr.String(), "-resume") {
		t.Errorf("interrupted figgen printed no resume hint:\n%s", crashErr.String())
	}

	// Worst case on top of the interrupt: tear the journal tail by hand
	// and require the resume to truncate past it.
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("0badc0de {\"kind\":\"cell\""); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	resumeDir := filepath.Join(dir, "resume")
	if err := os.Mkdir(resumeDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var resumeErr bytes.Buffer
	if err := run(append(common, "-outdir", resumeDir, "-checkpoint", jpath, "-resume"), &sink, &resumeErr); err != nil {
		t.Fatalf("resumed run: %v\nstderr:\n%s", err, resumeErr.String())
	}
	if got := readScenarioCSVs(t, resumeDir); !bytes.Equal(want, got) {
		t.Fatalf("resumed CSVs differ from uninterrupted run:\n--- want\n%s\n--- got\n%s", want, got)
	}

	// The resumed manifest must carry the resume evidence.
	data, err := os.ReadFile(filepath.Join(resumeDir, "scenario-time.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := obs.ParseManifest(data)
	if err != nil {
		t.Fatalf("resumed manifest invalid: %v", err)
	}
	if m.Resume == nil || m.Resume.SkippedCells < 1 {
		t.Fatalf("resumed manifest lacks resume evidence: %+v", m.Resume)
	}
}
