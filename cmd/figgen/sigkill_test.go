//go:build unix

package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"mmwalign/internal/journal"
)

// TestSIGKILLedCheckpointRunRecovers is the journal's hardest crash
// test: a real figgen process is SIGKILLed mid-run — no deferred
// functions, no flush, the exact failure the fsync-per-cell discipline
// exists for — and the resumed run must still produce a byte-identical
// CSV. The resume also exercises the journal owner lock's dead-PID
// takeover: the killed process never released its .lock file.
func TestSIGKILLedCheckpointRunRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: builds and kills a real figgen process")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "figgen")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building figgen: %v\n%s", err, out)
	}

	clean := filepath.Join(dir, "clean.csv")
	resumed := filepath.Join(dir, "resumed.csv")
	common := []string{"-fig", "5", "-drops", "4", "-schemes", "random,scan", "-progress=false", "-manifest=false"}
	var sink bytes.Buffer
	if err := run(append(common, "-out", clean), &sink, &sink); err != nil {
		t.Fatalf("clean run: %v", err)
	}

	jpath := filepath.Join(dir, "fig5.journal")
	cmd := exec.Command(bin, append(common, "-out", filepath.Join(dir, "crashed.csv"), "-checkpoint", jpath)...)
	cmd.Stdout = &sink
	cmd.Stderr = &sink
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting figgen: %v", err)
	}
	// Kill as soon as at least one cell is journaled, so the journal is
	// non-trivial but (very likely) incomplete. Inspect reads without
	// the owner lock, so polling a live writer is safe.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, done, _, err := journal.Inspect(jpath); err == nil && len(done) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("figgen journaled no cell within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: nothing runs after this
		t.Fatalf("killing figgen: %v", err)
	}
	cmd.Wait()

	// Worst case on top of the kill: the journal tail was cut mid-write.
	// Append a torn record by hand (a kill between write and fsync can
	// leave exactly this) and require the resume to truncate past it.
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("0badc0de {\"kind\":\"cell\""); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, torn, err := journal.Inspect(jpath); err != nil || !torn {
		t.Fatalf("Inspect(killed journal) torn=%v err=%v, want a torn tail", torn, err)
	}

	var stderr bytes.Buffer
	if err := run(append(common, "-out", resumed, "-checkpoint", jpath, "-resume"), &sink, &stderr); err != nil {
		t.Fatalf("resume after SIGKILL: %v\nstderr:\n%s", err, stderr.String())
	}
	a, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("CSV resumed after SIGKILL differs from uninterrupted run:\n--- clean ---\n%s\n--- resumed ---\n%s", a, b)
	}
}
