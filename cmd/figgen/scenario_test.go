package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmwalign/internal/obs"
)

// tinyScenarioArgs is a sweep small enough for in-process CLI tests:
// 2 speeds × 1 UE × 2 schemes over 4 superframes.
func tinyScenarioArgs(outdir string) []string {
	return []string{
		"-scenario", "-seed", "3", "-ues", "1", "-frames", "4",
		"-speeds", "2,20", "-schemes", "proposed,exhaustive",
		"-progress=false", "-outdir", outdir,
	}
}

// readScenarioCSVs returns the concatenated bytes of both scenario
// CSVs, the unit the byte-identity guarantees are stated over.
func readScenarioCSVs(t *testing.T, dir string) []byte {
	t.Helper()
	var all []byte
	for _, name := range []string{"scenario-time.csv", "scenario-speed.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("scenario CSV missing: %v", err)
		}
		all = append(all, data...)
	}
	return all
}

func TestScenarioCLIWritesFiguresAndManifest(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run(tinyScenarioArgs(dir), &stdout, &stderr); err != nil {
		t.Fatalf("scenario run: %v\nstderr:\n%s", err, stderr.String())
	}
	if got := readScenarioCSVs(t, dir); len(got) == 0 {
		t.Fatal("empty scenario CSVs")
	}
	// Both figures and their output paths are announced on stdout.
	for _, want := range []string{"scenario-time", "scenario-speed", "wrote"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout.String())
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "scenario-time.manifest.json"))
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	m, err := obs.ParseManifest(data)
	if err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.Figure != "scenario" || !m.Instrumented {
		t.Errorf("manifest figure %q instrumented %v, want scenario/true", m.Figure, m.Instrumented)
	}
	if m.Counters["scenario_realigns"] == 0 {
		t.Errorf("manifest records no realignments: %v", m.Counters)
	}
	if m.Version == "" || m.CreatedAt == "" {
		t.Errorf("manifest missing version/timestamp stamps: %+v", m)
	}
}

// The CLI path must preserve the engine's worker-count invariance:
// -workers 1 and -workers 8 render byte-identical CSVs.
func TestScenarioCLIWorkerInvariance(t *testing.T) {
	dir1, dir8 := t.TempDir(), t.TempDir()
	var sink bytes.Buffer
	if err := run(append(tinyScenarioArgs(dir1), "-workers", "1"), &sink, &sink); err != nil {
		t.Fatal(err)
	}
	if err := run(append(tinyScenarioArgs(dir8), "-workers", "8"), &sink, &sink); err != nil {
		t.Fatal(err)
	}
	b1, b8 := readScenarioCSVs(t, dir1), readScenarioCSVs(t, dir8)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("-workers 1 and -workers 8 CSVs differ:\n--- w1\n%s\n--- w8\n%s", b1, b8)
	}
}

func TestScenarioCLIFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-scenario", "-fig", "5"},
		{"-scenario", "-all"},
		{"-scenario", "-shard-dir", "x", "-worker-id", "w1"},
		{"-scenario", "-inject", "nan=0.5"},
		{"-scenario", "-speeds", "fast"},
		{"-scenario", "-speeds", "-3"},
	}
	for _, args := range cases {
		var sink bytes.Buffer
		if err := run(args, &sink, &sink); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
