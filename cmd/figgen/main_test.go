package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmwalign/internal/obs"
)

func TestStrictExitsNonZeroOnInjectedDropFailure(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-fig", "5", "-drops", "2", "-schemes", "random,scan",
		"-outdir", dir, "-max-failed-drops", "1",
		"-inject", "panic-drop=1", "-strict", "-progress=false",
	}, &stdout, &stderr)
	if err == nil {
		t.Fatal("-strict accepted a run with failed drops")
	}
	if !strings.Contains(err.Error(), "strict") {
		t.Errorf("error %q does not mention -strict", err)
	}
	// Failure diagnostics go to stderr, never stdout.
	if strings.Contains(stdout.String(), "!!") {
		t.Error("failure diagnostics leaked to stdout")
	}
	if !strings.Contains(stderr.String(), "!!") || !strings.Contains(stderr.String(), "injected measurement panic") {
		t.Errorf("stderr lacks attributed failure diagnostics:\n%s", stderr.String())
	}
	// The figure itself still completed: CSV and manifest were written,
	// and the manifest records the failure.
	data, err := os.ReadFile(filepath.Join(dir, "fig5.manifest.json"))
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	m, err := obs.ParseManifest(data)
	if err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.Failures == nil || m.Failures.FailedDrops != 1 {
		t.Errorf("manifest failure summary = %+v, want 1 failed drop", m.Failures)
	}
	if !m.Instrumented || len(m.Phases) == 0 {
		t.Errorf("manifest not instrumented: %+v", m)
	}
}

func TestSameSeedSurvivesStrictWithoutInjection(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-fig", "5", "-drops", "2", "-schemes", "random,scan",
		"-outdir", dir, "-strict", "-progress=false",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("clean -strict run failed: %v", err)
	}
	if strings.Contains(stderr.String(), "!!") {
		t.Errorf("clean run produced failure diagnostics:\n%s", stderr.String())
	}
}

func TestInstrumentationIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	on := filepath.Join(dir, "on.csv")
	off := filepath.Join(dir, "off.csv")
	common := []string{"-fig", "5", "-drops", "2", "-schemes", "random,scan,proposed", "-manifest=false", "-progress=false"}
	var sink bytes.Buffer
	if err := run(append(common, "-out", on, "-instrument=true"), &sink, &sink); err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	if err := run(append(common, "-out", off, "-instrument=false"), &sink, &sink); err != nil {
		t.Fatalf("uninstrumented run: %v", err)
	}
	a, err := os.ReadFile(on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(off)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("CSV differs with instrumentation on vs off:\n--- on ---\n%s\n--- off ---\n%s", a, b)
	}
}

func TestParseInjectSpecRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"nan", "nan=2", "nan=-0.1", "unknown=1", "panic-drop=x", "panic-drop=-1", "block-after=no", "seed=1.5",
		"fail-attempts=x", "fail-attempts=-1", "kill-after-cells=x", "kill-after-cells=-1",
	} {
		if _, err := parseInjectSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	// kill-after-cells parses but is not invoked here: arming it is
	// harmless, firing it would SIGKILL the test process.
	if _, err := parseInjectSpec("nan=0.1,inf=0.05,outlier=0.1,drop=0.1,block-after=40,seed=9,panic-drop=2,fail-attempts=1,kill-after-cells=5"); err != nil {
		t.Errorf("full valid spec rejected: %v", err)
	}
}

func TestCheckpointResumeProducesByteIdenticalCSV(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "fig5.journal")
	clean := filepath.Join(dir, "clean.csv")
	resumed := filepath.Join(dir, "resumed.csv")
	common := []string{"-fig", "5", "-drops", "3", "-schemes", "random,scan", "-progress=false"}
	var sink bytes.Buffer

	if err := run(append(common, "-out", clean, "-manifest=false"), &sink, &sink); err != nil {
		t.Fatalf("clean run: %v", err)
	}

	// Crash: drop 1 panics under the strict default budget, with the
	// journal armed. The run fails but the completed cells are on disk.
	var crashErr bytes.Buffer
	if err := run(append(common, "-out", filepath.Join(dir, "crashed.csv"), "-manifest=false",
		"-checkpoint", jpath, "-inject", "panic-drop=1"), &sink, &crashErr); err == nil {
		t.Fatal("injected panic did not fail the checkpointed run")
	}
	if _, err := os.Stat(jpath); err != nil {
		t.Fatalf("crashed run left no journal: %v", err)
	}

	// Resume without the fault: the CSV must match the clean run byte
	// for byte, and the manifest must carry the resume evidence.
	var stderr bytes.Buffer
	if err := run(append(common, "-out", resumed, "-checkpoint", jpath, "-resume"), &sink, &stderr); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !strings.Contains(stderr.String(), "resuming fig5 from") {
		t.Errorf("resume did not announce the journal:\n%s", stderr.String())
	}
	a, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("resumed CSV differs from uninterrupted run:\n--- clean ---\n%s\n--- resumed ---\n%s", a, b)
	}
	data, err := os.ReadFile(filepath.Join(dir, "resumed.manifest.json"))
	if err != nil {
		t.Fatalf("resumed manifest not written: %v", err)
	}
	m, err := obs.ParseManifest(data)
	if err != nil {
		t.Fatalf("resumed manifest invalid: %v", err)
	}
	if m.Resume == nil || m.Resume.SkippedCells == 0 || m.Resume.Journal != jpath {
		t.Errorf("manifest resume evidence = %+v, want skipped cells from %s", m.Resume, jpath)
	}
}

func TestCheckpointInspect(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "fig5.journal")
	var sink bytes.Buffer
	// Produce a partial journal via an injected crash.
	run([]string{"-fig", "5", "-drops", "3", "-schemes", "random,scan", "-progress=false",
		"-out", filepath.Join(dir, "x.csv"), "-manifest=false",
		"-checkpoint", jpath, "-inject", "panic-drop=1"}, &sink, &sink)

	var stdout bytes.Buffer
	if err := run([]string{"-checkpoint-inspect", jpath}, &stdout, &sink); err != nil {
		t.Fatalf("checkpoint-inspect: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{"figure:       fig5", "config hash:", "3 drops × 2 schemes", "completed:", "pending:", "1/random"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}

	if err := run([]string{"-checkpoint-inspect", filepath.Join(dir, "missing.journal")}, &stdout, &sink); err == nil {
		t.Error("inspect of a missing journal succeeded")
	}
}

func TestResumeRequiresCheckpoint(t *testing.T) {
	var sink bytes.Buffer
	err := run([]string{"-fig", "5", "-resume"}, &sink, &sink)
	if err == nil || !strings.Contains(err.Error(), "-resume requires -checkpoint") {
		t.Errorf("-resume without -checkpoint returned %v", err)
	}
}

func TestShardFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-fig", "5", "-shard-dir", "d"}, "-shard-dir needs"},
		{[]string{"-fig", "5", "-worker-id", "w1"}, "need -shard-dir"},
		{[]string{"-fig", "5", "-merge"}, "need -shard-dir"},
		{[]string{"-fig", "5", "-shard-dir", "d", "-worker-id", "w1", "-merge"}, "not both"},
		{[]string{"-all", "-shard-dir", "d", "-worker-id", "w1"}, "not -all"},
		{[]string{"-fig", "5", "-shard-dir", "d", "-worker-id", "w1", "-checkpoint", "j"}, "replaces -checkpoint"},
		{[]string{"-fig", "5", "-shard-dir", "d", "-merge", "-resume", "-checkpoint", "j"}, "replaces -checkpoint"},
	} {
		var sink bytes.Buffer
		err := run(tc.args, &sink, &sink)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}

// TestShardWorkersMergeByteIdenticalCSV drives the sharded-sweep CLI
// end to end in-process: two workers split a grid through the lease
// protocol, -merge folds their journals and generates the figure, and
// the CSV must match a single-process run byte for byte. The manifest
// must carry the shard evidence and -checkpoint-inspect must read the
// shard directory.
func TestShardWorkersMergeByteIdenticalCSV(t *testing.T) {
	dir := t.TempDir()
	sdir := filepath.Join(dir, "sweep")
	clean := filepath.Join(dir, "clean.csv")
	merged := filepath.Join(dir, "merged.csv")
	common := []string{"-fig", "5", "-drops", "3", "-schemes", "random,scan", "-progress=false"}
	var sink bytes.Buffer

	if err := run(append(common, "-out", clean, "-manifest=false"), &sink, &sink); err != nil {
		t.Fatalf("clean run: %v", err)
	}

	for _, id := range []string{"w1", "w2"} {
		var stdout bytes.Buffer
		if err := run(append(common, "-shard-dir", sdir, "-worker-id", id), &stdout, &sink); err != nil {
			t.Fatalf("worker %s: %v", id, err)
		}
		if !strings.Contains(stdout.String(), "worker "+id+":") || !strings.Contains(stdout.String(), "grid complete: true") {
			t.Errorf("worker %s summary missing or incomplete:\n%s", id, stdout.String())
		}
	}

	var stderr bytes.Buffer
	if err := run(append(common, "-shard-dir", sdir, "-merge", "-out", merged), &sink, &stderr); err != nil {
		t.Fatalf("merge: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "merged 6 of 6 cells from 2 worker journals") {
		t.Errorf("merge did not announce its fold:\n%s", stderr.String())
	}
	a, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("merged CSV differs from single-process run:\n--- clean ---\n%s\n--- merged ---\n%s", a, b)
	}

	data, err := os.ReadFile(filepath.Join(dir, "merged.manifest.json"))
	if err != nil {
		t.Fatalf("merged manifest not written: %v", err)
	}
	m, err := obs.ParseManifest(data)
	if err != nil {
		t.Fatalf("merged manifest invalid: %v", err)
	}
	if m.Shard == nil || m.Shard.MergedCells != 6 || len(m.Shard.Workers) != 2 {
		t.Fatalf("manifest shard evidence = %+v, want 6 merged cells from 2 workers", m.Shard)
	}
	for _, w := range m.Shard.Workers {
		if !w.Reported {
			t.Errorf("worker %s finished cleanly but is not marked reported", w.Worker)
		}
	}
	// The merged journal satisfied every cell, so the figure run is pure
	// replay.
	if m.Resume == nil || m.Resume.SkippedCells != 6 {
		t.Errorf("manifest resume evidence = %+v, want 6 skipped cells", m.Resume)
	}

	var stdout bytes.Buffer
	if err := run([]string{"-checkpoint-inspect", sdir}, &stdout, &sink); err != nil {
		t.Fatalf("checkpoint-inspect of shard dir: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{"shard dir:", "figure:       fig5", "config hash:", "worker:       w1", "worker:       w2", "completed:    6 of 6 cells", "pending:      none"} {
		if !strings.Contains(out, want) {
			t.Errorf("shard-dir inspect output missing %q:\n%s", want, out)
		}
	}
}

func TestRetriesAbsorbTransientInjection(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	// Every cell's first attempt panics; -retries 1 must absorb all of
	// it under the strict zero-failure budget.
	err := run([]string{
		"-fig", "5", "-drops", "2", "-schemes", "random,scan",
		"-out", filepath.Join(dir, "fig5.csv"),
		"-inject", "fail-attempts=1", "-retries", "1", "-strict", "-progress=false",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("transient faults defeated -retries: %v\nstderr:\n%s", err, stderr.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.manifest.json"))
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	m, err := obs.ParseManifest(data)
	if err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.Retries == nil || m.Retries.RecoveredCells == 0 {
		t.Errorf("manifest retry evidence = %+v, want recovered cells", m.Retries)
	}
	if m.Failures != nil {
		t.Errorf("recovered run still reports failures: %+v", m.Failures)
	}
}
