package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmwalign/internal/obs"
)

func TestStrictExitsNonZeroOnInjectedDropFailure(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-fig", "5", "-drops", "2", "-schemes", "random,scan",
		"-outdir", dir, "-max-failed-drops", "1",
		"-inject", "panic-drop=1", "-strict", "-progress=false",
	}, &stdout, &stderr)
	if err == nil {
		t.Fatal("-strict accepted a run with failed drops")
	}
	if !strings.Contains(err.Error(), "strict") {
		t.Errorf("error %q does not mention -strict", err)
	}
	// Failure diagnostics go to stderr, never stdout.
	if strings.Contains(stdout.String(), "!!") {
		t.Error("failure diagnostics leaked to stdout")
	}
	if !strings.Contains(stderr.String(), "!!") || !strings.Contains(stderr.String(), "injected measurement panic") {
		t.Errorf("stderr lacks attributed failure diagnostics:\n%s", stderr.String())
	}
	// The figure itself still completed: CSV and manifest were written,
	// and the manifest records the failure.
	data, err := os.ReadFile(filepath.Join(dir, "fig5.manifest.json"))
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	m, err := obs.ParseManifest(data)
	if err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.Failures == nil || m.Failures.FailedDrops != 1 {
		t.Errorf("manifest failure summary = %+v, want 1 failed drop", m.Failures)
	}
	if !m.Instrumented || len(m.Phases) == 0 {
		t.Errorf("manifest not instrumented: %+v", m)
	}
}

func TestSameSeedSurvivesStrictWithoutInjection(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-fig", "5", "-drops", "2", "-schemes", "random,scan",
		"-outdir", dir, "-strict", "-progress=false",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("clean -strict run failed: %v", err)
	}
	if strings.Contains(stderr.String(), "!!") {
		t.Errorf("clean run produced failure diagnostics:\n%s", stderr.String())
	}
}

func TestInstrumentationIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	on := filepath.Join(dir, "on.csv")
	off := filepath.Join(dir, "off.csv")
	common := []string{"-fig", "5", "-drops", "2", "-schemes", "random,scan,proposed", "-manifest=false", "-progress=false"}
	var sink bytes.Buffer
	if err := run(append(common, "-out", on, "-instrument=true"), &sink, &sink); err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	if err := run(append(common, "-out", off, "-instrument=false"), &sink, &sink); err != nil {
		t.Fatalf("uninstrumented run: %v", err)
	}
	a, err := os.ReadFile(on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(off)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("CSV differs with instrumentation on vs off:\n--- on ---\n%s\n--- off ---\n%s", a, b)
	}
}

func TestParseInjectSpecRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"nan", "nan=2", "nan=-0.1", "unknown=1", "panic-drop=x", "panic-drop=-1", "block-after=no", "seed=1.5",
	} {
		if _, err := parseInjectSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if _, err := parseInjectSpec("nan=0.1,inf=0.05,outlier=0.1,drop=0.1,block-after=40,seed=9,panic-drop=2"); err != nil {
		t.Errorf("full valid spec rejected: %v", err)
	}
}
