package main

// The -scenario mode: mobility sweeps through internal/scenario with
// the same production substrate as the figure runs — checkpoint
// journal, resume, run manifest, progress — emitting two CSVs
// (throughput-vs-time and throughput-vs-speed) instead of one.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mmwalign/internal/journal"
	"mmwalign/internal/metrics"
	"mmwalign/internal/obs"
	"mmwalign/internal/scenario"
)

// scenarioOpts carries the flag values the scenario path consumes.
type scenarioOpts struct {
	cfg        scenario.Config
	out        string
	outdir     string
	checkpoint string
	resume     bool
	instrument bool
	progress   bool
	counters   bool
	manifest   bool
}

// parseSpeeds converts a comma-separated speed list to m/s values.
func parseSpeeds(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	var out []float64
	for _, s := range splitComma(spec) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("-speeds: %q is not a non-negative speed", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// runScenario executes the mobility sweep and writes its two CSVs, the
// manifest, and the terminal tables.
func runScenario(ctx context.Context, o scenarioOpts, stdout, stderr io.Writer) error {
	sctx := ctx
	var rec *obs.Recorder
	if o.instrument {
		rec = obs.New()
		if o.progress {
			rec.SetProgress(obs.ProgressPrinter(stderr, "scenario", time.Second))
		}
		if o.counters {
			obs.Publish("figgen.scenario", rec)
		}
		sctx = obs.Into(ctx, rec)
	}

	var jpath string
	if o.checkpoint != "" {
		jpath = o.checkpoint
		jnl, err := openScenarioJournal(jpath, o.cfg, o.resume, stderr)
		if err != nil {
			return err
		}
		defer jnl.Close()
		o.cfg.Journal = jnl
	}

	start := time.Now()
	res, err := scenario.RunContext(sctx, o.cfg)
	if err != nil {
		if ctx.Err() != nil && jpath != "" {
			fmt.Fprintf(stderr, "figgen: interrupted — resume with: figgen -scenario -seed %d -checkpoint %s -resume\n",
				o.cfg.Seed, jpath)
		}
		return err
	}

	rc := o.cfg.WithDefaults()
	fmt.Fprintf(stdout, "== scenario — %d speeds × %d UEs × %d schemes, %d frames, %v ==\n",
		len(rc.SpeedsMPS), rc.UEs, len(rc.Schemes), rc.Frames, time.Since(start).Round(time.Millisecond))

	timePath := o.out
	if timePath == "" {
		timePath = filepath.Join(o.outdir, res.Time.ID+".csv")
	}
	speedPath := siblingPath(timePath, res.Speed.ID)

	for _, fig := range []struct {
		f    scenario.Figure
		path string
	}{{res.Time, timePath}, {res.Speed, speedPath}} {
		fmt.Fprintf(stdout, "-- %s (%s)\n", fig.f.ID, fig.f.Title)
		if err := metrics.WriteTable(stdout, fig.f.XLabel, fig.f.Series); err != nil {
			return err
		}
		if err := metrics.PlotASCII(stdout, fig.f.YLabel+" vs "+fig.f.XLabel, fig.f.Series, 64, 14); err != nil {
			return err
		}
		fh, err := os.Create(fig.path)
		if err != nil {
			return fmt.Errorf("create %s: %w", fig.path, err)
		}
		err = metrics.WriteCSV(fh, fig.f.XLabel, fig.f.Series)
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s: %w", fig.path, err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", fig.path)
	}

	if o.counters && rec != nil {
		if err := rec.Snapshot().WriteText(stderr); err != nil {
			return err
		}
	}

	if o.manifest && res.Manifest != nil {
		res.Manifest.Version = versionString()
		res.Manifest.CreatedAt = time.Now().UTC().Format(time.RFC3339)
		mpath := strings.TrimSuffix(timePath, filepath.Ext(timePath)) + ".manifest.json"
		mf, err := os.Create(mpath)
		if err != nil {
			return fmt.Errorf("create %s: %w", mpath, err)
		}
		err = res.Manifest.WriteJSON(mf)
		if cerr := mf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s: %w", mpath, err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", mpath)
	}
	return nil
}

// siblingPath derives the second CSV's path from the first: the speed
// figure lands next to the time figure under its own figure ID.
func siblingPath(timePath, id string) string {
	return filepath.Join(filepath.Dir(timePath), id+".csv")
}

// openScenarioJournal mirrors openJournal for the scenario figure ID.
func openScenarioJournal(path string, cfg scenario.Config, resume bool, stderr io.Writer) (*journal.Journal, error) {
	want := scenario.JournalHeader(cfg)
	if resume {
		if _, statErr := os.Stat(path); statErr == nil {
			j, err := journal.Open(path, want)
			if err != nil {
				return nil, fmt.Errorf("resume %s: %w", path, err)
			}
			fmt.Fprintf(stderr, "figgen: resuming scenario from %s: %d of %d cells already complete\n",
				path, j.Len(), want.Drops*len(want.Schemes))
			return j, nil
		} else if !errors.Is(statErr, os.ErrNotExist) {
			return nil, fmt.Errorf("resume %s: %w", path, statErr)
		}
		fmt.Fprintf(stderr, "figgen: -resume: no journal at %s yet, starting fresh\n", path)
	} else if _, statErr := os.Stat(path); statErr == nil {
		fmt.Fprintf(stderr, "figgen: overwriting existing checkpoint %s (pass -resume to continue it)\n", path)
	}
	want.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	return journal.Create(path, want)
}
