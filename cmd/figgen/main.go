// Command figgen regenerates the result figures of the paper
// (Fig. 5–8) as CSV files and quick ASCII plots.
//
// Usage:
//
//	figgen -fig 5 -drops 100 -out fig5.csv
//	figgen -all -drops 100 -outdir results/
//	figgen -fig 5 -strict -inject nan=0.3 -max-failed-drops 2
//	figgen -fig 7 -pprof prof/fig7 -counters
//	figgen -fig 6 -drops 500 -checkpoint fig6.journal       # long run, crash-safe
//	figgen -fig 6 -drops 500 -checkpoint fig6.journal -resume
//	figgen -checkpoint-inspect fig6.journal                 # is a resume safe?
//	figgen -fig 6 -drops 500 -shard-dir sweep -worker-id w1 # one of N processes
//	figgen -fig 6 -drops 500 -shard-dir sweep -merge        # fold + finish
//	figgen -checkpoint-inspect sweep                        # shard-dir progress
//
// With -checkpoint, every completed (drop, scheme) cell is fsynced to
// an append-only journal; Ctrl-C (or SIGTERM) cancels the workers
// gracefully, flushes the journal, and prints the exact -resume
// invocation. A resumed run skips the journaled cells and produces
// byte-identical CSVs to an uninterrupted run; the journal refuses to
// resume across a changed configuration (canonical config-hash check).
//
// With -shard-dir, several figgen processes — typically on different
// machines sharing a directory — split one figure's (drop, scheme)
// grid between them: each -worker-id process claims cells through
// crash-tolerant lease files and journals its results, and cells held
// by a worker that died (lease heartbeat older than -lease-ttl) are
// stolen and recomputed by the survivors. A final -merge invocation
// folds the worker journals into one checkpoint and generates the
// figure from it, byte-identical to a single-process run.
//
// The output CSV has one row per sweep point and one column per scheme;
// the same data is printed as an aligned table and an ASCII plot on
// stdout so the figure shape can be checked without leaving the
// terminal. A machine-readable run manifest
// (mmwalign/run-manifest/v1) is written next to each CSV; progress and
// failure diagnostics go to stderr so stdout stays parseable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mmwalign/internal/cmat"
	"mmwalign/internal/experiment"
	"mmwalign/internal/faultinject"
	"mmwalign/internal/journal"
	"mmwalign/internal/meas"
	"mmwalign/internal/metrics"
	"mmwalign/internal/obs"
	"mmwalign/internal/scenario"
	"mmwalign/internal/shard"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "figgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("figgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig        = fs.Int("fig", 0, "paper figure to regenerate (5-8)")
		all        = fs.Bool("all", false, "regenerate all figures")
		drops      = fs.Int("drops", 100, "independent channel drops per point")
		seed       = fs.Int64("seed", 1, "random seed")
		gammaDB    = fs.Float64("gamma", 0, "pre-beamforming SNR Es/N0 in dB")
		snapshots  = fs.Int("snapshots", 4, "fading+noise snapshots per measurement")
		j          = fs.Int("j", 8, "measurements per TX slot (proposed scheme)")
		mu         = fs.Float64("mu", 1, "nuclear-norm regularization weight")
		schemes    = fs.String("schemes", "", "comma-separated scheme list (default: random,scan,proposed)")
		extended   = fs.Bool("extended", false, "include the extension schemes (two-sided, local-refine, hierarchical)")
		out        = fs.String("out", "", "CSV output path (single figure; default stdout only)")
		outdir     = fs.String("outdir", ".", "output directory for -all")
		jsonOut    = fs.Bool("json", false, "also write a .json next to each CSV")
		timeout    = fs.Duration("timeout", 0, "abort generation after this duration (0 = no limit)")
		maxFailed  = fs.Int("max-failed-drops", 0, "error budget: drops that may fail while still producing a figure (failures are excluded and reported)")
		strict     = fs.Bool("strict", false, "exit non-zero when any drop failed, even within the error budget")
		progress   = fs.Bool("progress", true, "report live per-cell progress on stderr (requires -instrument)")
		instrument = fs.Bool("instrument", true, "collect phase timings, counters and solver aggregates")
		manifest   = fs.Bool("manifest", true, "write a <fig>.manifest.json run manifest next to each CSV")
		counters   = fs.Bool("counters", false, "print the instrumentation snapshot to stderr and publish it via expvar")
		pprofPfx   = fs.String("pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles")
		inject     = fs.String("inject", "", "fault-injection spec, e.g. nan=0.1,inf=0.05,outlier=0.1,drop=0.1,block-after=40,seed=9,panic-drop=2,fail-attempts=1")
		checkpoint = fs.String("checkpoint", "", "crash-safe run journal path: completed cells are fsynced so an interrupted run can -resume (with -all, one journal per figure at <path>.<fig>)")
		resume     = fs.Bool("resume", false, "resume from the -checkpoint journal, skipping already-completed cells (refused if the configuration changed)")
		retries    = fs.Int("retries", 0, "re-run a failed (drop, scheme) cell up to N times before it consumes the -max-failed-drops budget")
		retryWait  = fs.Duration("retry-backoff", 0, "delay before the first retry of a cell, doubling per attempt (capped)")
		inspect    = fs.String("checkpoint-inspect", "", "print a journal's header, completed-cell count and pending cells, then exit (also accepts a -shard-dir)")
		shardDir   = fs.String("shard-dir", "", "shared directory for a multi-process sharded sweep (use with -worker-id or -merge)")
		workerID   = fs.String("worker-id", "", "compute this process's share of the -shard-dir sweep under the given worker ID")
		leaseTTL   = fs.Duration("lease-ttl", 10*time.Second, "shard lease heartbeat TTL: a cell whose lease is staler than this is stolen from its (presumed dead) worker")
		merge      = fs.Bool("merge", false, "fold the -shard-dir worker journals into one checkpoint and generate the figure from it")
		scen       = fs.Bool("scenario", false, "run the mobility scenario sweep instead of a static figure (writes scenario-time and scenario-speed CSVs)")
		workers    = fs.Int("workers", 0, "bound concurrent cells (0 = GOMAXPROCS); results are invariant to the worker count")
		speeds     = fs.String("speeds", "", "-scenario: comma-separated UE speeds in m/s (default 1,5,15,30)")
		ues        = fs.Int("ues", 0, "-scenario: UE trajectories per speed point (default 4)")
		frames     = fs.Int("frames", 0, "-scenario: superframe horizon per trajectory (default 40)")
		motion     = fs.String("motion", "", "-scenario: trajectory model, waypoint, linear or random-walk (default waypoint)")
		multipath  = fs.Bool("multipath", false, "-scenario: use the NYC clustered multipath channel")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspect != "" {
		return inspectCheckpoint(*inspect, stdout)
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the context,
	// which stops spawning cells and drains the in-flight workers; every
	// cell that finished is already fsynced to the journal, so the
	// "resume with …" hint below is honest the moment it prints. A
	// second signal kills the process the hard way (signal.NotifyContext
	// unregisters on stop).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint <path>")
	}

	if *scen {
		switch {
		case *fig != 0 || *all:
			return fmt.Errorf("-scenario is its own mode: drop -fig/-all")
		case *shardDir != "" || *workerID != "" || *merge:
			return fmt.Errorf("-scenario does not shard; use -checkpoint/-resume for crash safety")
		case *inject != "":
			return fmt.Errorf("-inject applies to the static figures only")
		}
		spd, err := parseSpeeds(*speeds)
		if err != nil {
			return err
		}
		scfg := scenario.Config{
			Seed:      *seed,
			UEs:       *ues,
			Frames:    *frames,
			SpeedsMPS: spd,
			Motion:    *motion,
			Multipath: *multipath,
			GammaDB:   *gammaDB,
			Snapshots: *snapshots,
			J:         *j,
			Mu:        *mu,
			Workers:   *workers,
		}
		if *schemes != "" {
			scfg.Schemes = splitComma(*schemes)
		}
		return runScenario(ctx, scenarioOpts{
			cfg:        scfg,
			out:        *out,
			outdir:     *outdir,
			checkpoint: *checkpoint,
			resume:     *resume,
			instrument: *instrument,
			progress:   *progress,
			counters:   *counters,
			manifest:   *manifest,
		}, stdout, stderr)
	}

	if !*all && (*fig < 5 || *fig > 8) {
		return fmt.Errorf("pass -fig 5..8 or -all")
	}
	switch {
	case *workerID != "" && *merge:
		return fmt.Errorf("pass -worker-id to compute a share or -merge to fold the results, not both")
	case (*workerID != "" || *merge) && *shardDir == "":
		return fmt.Errorf("-worker-id and -merge need -shard-dir <dir>")
	case *shardDir != "" && *workerID == "" && !*merge:
		return fmt.Errorf("-shard-dir needs -worker-id (compute a share) or -merge (fold the results)")
	}
	if *shardDir != "" {
		if *all {
			return fmt.Errorf("sharded sweeps are per figure: pass -fig, not -all")
		}
		if *checkpoint != "" || *resume {
			return fmt.Errorf("-shard-dir replaces -checkpoint/-resume: workers journal into the shard directory")
		}
	}

	cfg := experiment.Config{
		Seed:           *seed,
		Drops:          *drops,
		GammaDB:        *gammaDB,
		Snapshots:      *snapshots,
		J:              *j,
		Mu:             *mu,
		MaxFailedDrops: *maxFailed,
		MaxRetries:     *retries,
		RetryBackoff:   *retryWait,
		Workers:        *workers,
	}
	if *schemes != "" {
		cfg.Schemes = splitComma(*schemes)
	} else if *extended {
		cfg.Schemes = []string{"random", "scan", "proposed", "two-sided", "local-refine", "hierarchical"}
	}
	if *inject != "" {
		wrap, err := parseInjectSpec(*inject)
		if err != nil {
			return err
		}
		cfg.WrapSounder = wrap
	}

	if *workerID != "" {
		// Worker mode computes cells and exits; figure generation belongs
		// to the -merge invocation once the grid is (mostly) done.
		w := &shard.Worker{Dir: *shardDir, ID: *workerID, Figure: *fig, Config: cfg, TTL: *leaseTTL, Log: stderr}
		sum, err := w.Run(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "worker %s: %d cells computed (%d stolen from dead workers, %d resumed from own journal, %d failed), grid complete: %v\n",
			sum.Worker, sum.ComputedCells, sum.StolenCells, sum.ResumedCells, sum.FailedCells, sum.Complete)
		return nil
	}

	if *pprofPfx != "" {
		cf, err := os.Create(*pprofPfx + ".cpu.pprof")
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			cf.Close()
			hf, err := os.Create(*pprofPfx + ".heap.pprof")
			if err != nil {
				fmt.Fprintln(stderr, "figgen: create heap profile:", err)
				return
			}
			if err := pprof.Lookup("heap").WriteTo(hf, 0); err != nil {
				fmt.Fprintln(stderr, "figgen: write heap profile:", err)
			}
			hf.Close()
		}()
	}

	figs := []int{*fig}
	if *all {
		figs = []int{5, 6, 7, 8}
	}
	anyFailures := false
	for _, f := range figs {
		// One recorder per figure so each manifest carries only its own
		// run's timings and counters.
		fctx := ctx
		var rec *obs.Recorder
		if *instrument {
			rec = obs.New()
			if *progress {
				rec.SetProgress(obs.ProgressPrinter(stderr, fmt.Sprintf("fig%d", f), time.Second))
			}
			if *counters {
				obs.Publish(fmt.Sprintf("figgen.fig%d", f), rec)
			}
			fctx = obs.Into(ctx, rec)
		}

		fcfg := cfg
		var shardSummary *obs.ShardSummary
		if *merge {
			res, err := shard.Merge(*shardDir, f, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "figgen: merged %d of %d cells from %d worker journals (%d duplicates, %d stolen)\n",
				res.Summary.MergedCells, res.Summary.TotalCells, len(res.Summary.Workers),
				res.Summary.DuplicateCells, res.Summary.StolenCells)
			// The merged journal is a plain checkpoint: the figure run
			// resume-skips every merged cell and computes whatever a
			// still-incomplete grid is missing, so the aggregation path is
			// the single-process one.
			want, err := experiment.JournalHeader(f, cfg)
			if err != nil {
				return err
			}
			jnl, err := journal.Open(res.JournalPath, want)
			if err != nil {
				return fmt.Errorf("open merged journal: %w", err)
			}
			defer jnl.Close()
			fcfg.Journal = jnl
			shardSummary = res.Summary
		}
		var jpath string
		if *checkpoint != "" {
			jpath = *checkpoint
			if *all {
				// One journal per figure: cells of different figures are
				// not interchangeable even when their configs hash alike.
				jpath = fmt.Sprintf("%s.fig%d", *checkpoint, f)
			}
			jnl, err := openJournal(jpath, f, cfg, *resume, stderr)
			if err != nil {
				return err
			}
			defer jnl.Close()
			fcfg.Journal = jnl
		}

		start := time.Now()
		result, err := experiment.GenerateContext(fctx, f, fcfg)
		if err != nil {
			if ctx.Err() != nil && jpath != "" {
				// The journal is already flushed (each cell fsyncs), so
				// the hint is safe to act on immediately.
				fmt.Fprintf(stderr, "figgen: interrupted — resume with: figgen -fig %d -drops %d -seed %d -checkpoint %s -resume\n",
					f, *drops, *seed, jpath)
			}
			return err
		}
		if shardSummary != nil && result.Manifest != nil {
			result.Manifest.Shard = shardSummary
		}
		fmt.Fprintf(stdout, "== %s (%s) — %d drops, %v ==\n", result.ID, result.Title, *drops, time.Since(start).Round(time.Millisecond))
		if result.Failures != nil {
			anyFailures = true
			// Failure diagnostics belong on stderr: stdout carries the
			// figure tables that downstream tooling parses.
			fmt.Fprintf(stderr, "!! %s: %d of %d drops excluded under the error budget:\n",
				result.ID, result.Failures.FailedDrops, result.Failures.TotalDrops)
			for _, fl := range result.Failures.Failures {
				fmt.Fprintf(stderr, "!!   drop %d scheme %s: %v\n", fl.Drop, fl.Scheme, fl.Err)
			}
		}
		if err := metrics.WriteTable(stdout, result.XLabel, result.Series); err != nil {
			return err
		}
		if err := metrics.PlotASCII(stdout, result.YLabel+" vs "+result.XLabel, result.Series, 64, 14); err != nil {
			return err
		}
		if *counters && rec != nil {
			if err := rec.Snapshot().WriteText(stderr); err != nil {
				return err
			}
		}

		path := *out
		if *all || path == "" {
			path = filepath.Join(*outdir, result.ID+".csv")
		}
		fh, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		err = metrics.WriteCSV(fh, result.XLabel, result.Series)
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)

		if *manifest && result.Manifest != nil {
			result.Manifest.Version = versionString()
			result.Manifest.CreatedAt = time.Now().UTC().Format(time.RFC3339)
			mpath := strings.TrimSuffix(path, filepath.Ext(path)) + ".manifest.json"
			mf, err := os.Create(mpath)
			if err != nil {
				return fmt.Errorf("create %s: %w", mpath, err)
			}
			// WriteJSON self-validates: a manifest that violates its own
			// schema fails the run rather than poisoning the audit trail.
			err = result.Manifest.WriteJSON(mf)
			if cerr := mf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("write %s: %w", mpath, err)
			}
			fmt.Fprintf(stdout, "wrote %s\n", mpath)
		}

		if *jsonOut {
			jpath := strings.TrimSuffix(path, filepath.Ext(path)) + ".json"
			jf, err := os.Create(jpath)
			if err != nil {
				return fmt.Errorf("create %s: %w", jpath, err)
			}
			err = metrics.WriteJSON(jf, result.XLabel, result.Series)
			if cerr := jf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("write %s: %w", jpath, err)
			}
			fmt.Fprintf(stdout, "wrote %s\n", jpath)
		}
		fmt.Fprintln(stdout)
	}
	if *strict && anyFailures {
		return fmt.Errorf("-strict: figure completed with failed drops")
	}
	return nil
}

// openJournal attaches the checkpoint journal for one figure run:
// resuming validates the existing file against the run's canonical
// config hash (a mismatch is a refusal, not a warning), anything else
// starts a fresh journal.
func openJournal(path string, fig int, cfg experiment.Config, resume bool, stderr io.Writer) (*journal.Journal, error) {
	want, err := experiment.JournalHeader(fig, cfg)
	if err != nil {
		return nil, err
	}
	if resume {
		if _, statErr := os.Stat(path); statErr == nil {
			j, err := journal.Open(path, want)
			if err != nil {
				return nil, fmt.Errorf("resume %s: %w", path, err)
			}
			if hv := j.Header().Version; hv != "" && want.Version != "" && hv != want.Version {
				// Version drift is informational: results are determined
				// by the config, which the hash already vouched for.
				fmt.Fprintf(stderr, "figgen: note: journal written by engine %s, resuming with %s\n", hv, want.Version)
			}
			fmt.Fprintf(stderr, "figgen: resuming fig%d from %s: %d of %d cells already complete\n",
				fig, path, j.Len(), want.Drops*len(want.Schemes))
			return j, nil
		} else if !errors.Is(statErr, os.ErrNotExist) {
			return nil, fmt.Errorf("resume %s: %w", path, statErr)
		}
		fmt.Fprintf(stderr, "figgen: -resume: no journal at %s yet, starting fresh\n", path)
	} else if _, statErr := os.Stat(path); statErr == nil {
		fmt.Fprintf(stderr, "figgen: overwriting existing checkpoint %s (pass -resume to continue it)\n", path)
	}
	want.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	return journal.Create(path, want)
}

// inspectCheckpoint prints a journal's header, completion tally, and
// pending cells — the pre-flight check for deciding whether a resume
// is safe (and how much work it will save).
func inspectCheckpoint(path string, stdout io.Writer) error {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return inspectShardDir(path, stdout)
	}
	h, done, torn, err := journal.Inspect(path)
	if err != nil {
		return fmt.Errorf("checkpoint-inspect: %w", err)
	}
	fmt.Fprintf(stdout, "journal:      %s\n", path)
	fmt.Fprintf(stdout, "schema:       %s\n", h.Schema)
	fmt.Fprintf(stdout, "figure:       %s\n", h.Figure)
	fmt.Fprintf(stdout, "config hash:  %s\n", h.ConfigHash)
	if h.Version != "" {
		fmt.Fprintf(stdout, "engine:       %s\n", h.Version)
	}
	if h.CreatedAt != "" {
		fmt.Fprintf(stdout, "created:      %s\n", h.CreatedAt)
	}
	fmt.Fprintf(stdout, "seed:         %d\n", h.Seed)
	fmt.Fprintf(stdout, "shape:        %d drops × %d schemes (%s)\n", h.Drops, len(h.Schemes), strings.Join(h.Schemes, ","))
	total := h.Drops * len(h.Schemes)
	records := 0
	completed := make(map[journal.CellKey]bool, len(done))
	var reruns []string
	for _, st := range done {
		completed[st.CellKey] = true
		records += st.Records
		if st.Records > 1 {
			reruns = append(reruns, fmt.Sprintf("%d/%s×%d", st.Drop, st.Scheme, st.Records))
		}
	}
	fmt.Fprintf(stdout, "completed:    %d of %d cells (%d records)\n", len(done), total, records)
	if len(reruns) > 0 {
		// A cell with more than one record was re-run — a resumed retry
		// or a stolen shard lease — and resolved last-write-wins.
		fmt.Fprintf(stdout, "re-run cells: %s\n", joinCapped(reruns, 16))
	}
	if torn {
		fmt.Fprintf(stdout, "torn tail:    yes (last record was cut mid-write; resume will truncate and re-run that cell)\n")
	}
	var pending []string
	for drop := 0; drop < h.Drops; drop++ {
		for _, scheme := range h.Schemes {
			if !completed[journal.CellKey{Drop: drop, Scheme: scheme}] {
				pending = append(pending, fmt.Sprintf("%d/%s", drop, scheme))
			}
		}
	}
	if len(pending) == 0 {
		fmt.Fprintf(stdout, "pending:      none — a resume replays entirely from the journal\n")
		return nil
	}
	fmt.Fprintf(stdout, "pending:      %d cells: %s\n", len(pending), joinCapped(pending, 16))
	return nil
}

// inspectShardDir prints a sharded sweep's progress: the directory
// header, each worker journal's tally, and the distinct-cell total —
// the pre-flight check for whether a -merge will produce a complete
// figure. Because it prints the config hash and per-cell record
// counts, running it against two shard directories is how you diff
// them: same hash means the cells are interchangeable, and a cell
// with more than one record was stolen or re-run.
func inspectShardDir(dir string, stdout io.Writer) error {
	hdr, err := shard.ReadDirHeader(dir)
	if err != nil {
		return fmt.Errorf("checkpoint-inspect: %w", err)
	}
	fmt.Fprintf(stdout, "shard dir:    %s\n", dir)
	fmt.Fprintf(stdout, "schema:       %s\n", hdr.Schema)
	fmt.Fprintf(stdout, "figure:       %s\n", hdr.Figure)
	fmt.Fprintf(stdout, "config hash:  %s\n", hdr.ConfigHash)
	fmt.Fprintf(stdout, "seed:         %d\n", hdr.Seed)
	fmt.Fprintf(stdout, "shape:        %d drops × %d schemes (%s)\n", hdr.Drops, len(hdr.Schemes), strings.Join(hdr.Schemes, ","))
	paths, err := filepath.Glob(filepath.Join(dir, "journals", "*.journal"))
	if err != nil {
		return fmt.Errorf("checkpoint-inspect: %w", err)
	}
	sort.Strings(paths)
	records := make(map[journal.CellKey]int)
	for _, p := range paths {
		_, stats, torn, err := journal.Inspect(p)
		if err != nil {
			return fmt.Errorf("checkpoint-inspect: %s: %v", p, err)
		}
		n := 0
		for _, st := range stats {
			records[st.CellKey] += st.Records
			n += st.Records
		}
		note := ""
		if torn {
			note = ", torn tail"
		}
		fmt.Fprintf(stdout, "worker:       %s — %d cells (%d records%s)\n",
			strings.TrimSuffix(filepath.Base(p), ".journal"), len(stats), n, note)
	}
	total := hdr.Drops * len(hdr.Schemes)
	var reruns, pending []string
	for drop := 0; drop < hdr.Drops; drop++ {
		for _, scheme := range hdr.Schemes {
			switch n := records[journal.CellKey{Drop: drop, Scheme: scheme}]; {
			case n == 0:
				pending = append(pending, fmt.Sprintf("%d/%s", drop, scheme))
			case n > 1:
				reruns = append(reruns, fmt.Sprintf("%d/%s×%d", drop, scheme, n))
			}
		}
	}
	fmt.Fprintf(stdout, "completed:    %d of %d cells\n", total-len(pending), total)
	if len(reruns) > 0 {
		// More than one record for a cell across the worker journals is
		// the signature of a stolen lease (or a worker's own retry); the
		// merge resolves it after verifying the payloads byte-identical.
		fmt.Fprintf(stdout, "re-run cells: %s\n", joinCapped(reruns, 16))
	}
	if len(pending) == 0 {
		fmt.Fprintf(stdout, "pending:      none — a -merge produces the complete figure\n")
		return nil
	}
	fmt.Fprintf(stdout, "pending:      %d cells: %s\n", len(pending), joinCapped(pending, 16))
	return nil
}

// joinCapped renders a list space-separated, eliding past the first
// show entries.
func joinCapped(list []string, show int) string {
	if len(list) <= show {
		return strings.Join(list, " ")
	}
	return fmt.Sprintf("%s … and %d more", strings.Join(list[:show], " "), len(list)-show)
}

// parseInjectSpec converts a "key=value,..." fault spec into a
// WrapSounder hook. Probability keys nan, inf, outlier and drop are per
// measurement; block-after and seed configure blockage and the fault
// stream; panic-drop=N panics on drop N's first measurement — the knob
// the CI strict-mode smoke uses to produce a genuinely failed drop;
// fail-attempts=N makes the first N attempts of every cell panic, the
// transient fault that only a -retries budget survives;
// kill-after-cells=N SIGKILLs the process on the (N+1)-th cell's first
// measurement — the shard chaos harness's deterministic mid-cell
// worker death.
func parseInjectSpec(spec string) (func(drop int, scheme string, p meas.Prober) meas.Prober, error) {
	var fcfg faultinject.Config
	panicDrop := -1
	failAttempts := 0
	killAfter := -1
	for _, kv := range splitComma(spec) {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("inject: %q is not key=value", kv)
		}
		switch key {
		case "nan", "inf", "outlier", "drop":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("inject: %s=%q is not a probability", key, val)
			}
			switch key {
			case "nan":
				fcfg.PNaN = p
			case "inf":
				fcfg.PInf = p
			case "outlier":
				fcfg.POutlier = p
			case "drop":
				fcfg.PDrop = p
			}
		case "block-after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("inject: block-after=%q is not a count", val)
			}
			fcfg.BlockAfter = n
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("inject: seed=%q is not an integer", val)
			}
			fcfg.Seed = s
		case "panic-drop":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("inject: panic-drop=%q is not a drop index", val)
			}
			panicDrop = n
		case "fail-attempts":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("inject: fail-attempts=%q is not a count", val)
			}
			failAttempts = n
		case "kill-after-cells":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("inject: kill-after-cells=%q is not a count", val)
			}
			killAfter = n
		default:
			return nil, fmt.Errorf("inject: unknown key %q", key)
		}
	}
	wrap := faultinject.Wrap(fcfg)
	var transient, killer func(drop int, scheme string, p meas.Prober) meas.Prober
	if failAttempts > 0 {
		transient = faultinject.WrapTransient(failAttempts, faultinject.TransientPanic)
	}
	if killAfter >= 0 {
		killer = faultinject.WrapKillAfter(killAfter)
	}
	return func(drop int, scheme string, p meas.Prober) meas.Prober {
		p = wrap(drop, scheme, p)
		if transient != nil {
			p = transient(drop, scheme, p)
		}
		if killer != nil {
			p = killer(drop, scheme, p)
		}
		if drop == panicDrop {
			return &panicProber{Prober: p}
		}
		return p
	}, nil
}

// panicProber crashes on the first pair measurement of its drop. The
// stochastic faults degrade gracefully inside the strategies, so this
// is the only injection that exercises the failed-drop path end to end.
type panicProber struct {
	meas.Prober
}

func (p *panicProber) Measure(txBeam, rxBeam int, u, v cmat.Vector) meas.Measurement {
	panic("figgen: injected measurement panic (-inject panic-drop)")
}

// versionString identifies the source tree for the manifest: build-info
// VCS stamping when the binary carries it, git describe as the dev-tree
// fallback.
func versionString() string {
	if v := experiment.VersionString(); v != "" {
		return v
	}
	if out, err := exec.Command("git", "describe", "--always", "--dirty").Output(); err == nil {
		if v := strings.TrimSpace(string(out)); v != "" {
			return v
		}
	}
	return "unknown"
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
