// Command figgen regenerates the result figures of the paper
// (Fig. 5–8) as CSV files and quick ASCII plots.
//
// Usage:
//
//	figgen -fig 5 -drops 100 -out fig5.csv
//	figgen -all -drops 100 -outdir results/
//	figgen -fig 5 -strict -inject nan=0.3 -max-failed-drops 2
//	figgen -fig 7 -pprof prof/fig7 -counters
//
// The output CSV has one row per sweep point and one column per scheme;
// the same data is printed as an aligned table and an ASCII plot on
// stdout so the figure shape can be checked without leaving the
// terminal. A machine-readable run manifest
// (mmwalign/run-manifest/v1) is written next to each CSV; progress and
// failure diagnostics go to stderr so stdout stays parseable.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mmwalign/internal/cmat"
	"mmwalign/internal/experiment"
	"mmwalign/internal/faultinject"
	"mmwalign/internal/meas"
	"mmwalign/internal/metrics"
	"mmwalign/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "figgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("figgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig        = fs.Int("fig", 0, "paper figure to regenerate (5-8)")
		all        = fs.Bool("all", false, "regenerate all figures")
		drops      = fs.Int("drops", 100, "independent channel drops per point")
		seed       = fs.Int64("seed", 1, "random seed")
		gammaDB    = fs.Float64("gamma", 0, "pre-beamforming SNR Es/N0 in dB")
		snapshots  = fs.Int("snapshots", 4, "fading+noise snapshots per measurement")
		j          = fs.Int("j", 8, "measurements per TX slot (proposed scheme)")
		mu         = fs.Float64("mu", 1, "nuclear-norm regularization weight")
		schemes    = fs.String("schemes", "", "comma-separated scheme list (default: random,scan,proposed)")
		extended   = fs.Bool("extended", false, "include the extension schemes (two-sided, local-refine, hierarchical)")
		out        = fs.String("out", "", "CSV output path (single figure; default stdout only)")
		outdir     = fs.String("outdir", ".", "output directory for -all")
		jsonOut    = fs.Bool("json", false, "also write a .json next to each CSV")
		timeout    = fs.Duration("timeout", 0, "abort generation after this duration (0 = no limit)")
		maxFailed  = fs.Int("max-failed-drops", 0, "error budget: drops that may fail while still producing a figure (failures are excluded and reported)")
		strict     = fs.Bool("strict", false, "exit non-zero when any drop failed, even within the error budget")
		progress   = fs.Bool("progress", true, "report live per-cell progress on stderr (requires -instrument)")
		instrument = fs.Bool("instrument", true, "collect phase timings, counters and solver aggregates")
		manifest   = fs.Bool("manifest", true, "write a <fig>.manifest.json run manifest next to each CSV")
		counters   = fs.Bool("counters", false, "print the instrumentation snapshot to stderr and publish it via expvar")
		pprofPfx   = fs.String("pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles")
		inject     = fs.String("inject", "", "fault-injection spec, e.g. nan=0.1,inf=0.05,outlier=0.1,drop=0.1,block-after=40,seed=9,panic-drop=2")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if !*all && (*fig < 5 || *fig > 8) {
		return fmt.Errorf("pass -fig 5..8 or -all")
	}

	cfg := experiment.Config{
		Seed:           *seed,
		Drops:          *drops,
		GammaDB:        *gammaDB,
		Snapshots:      *snapshots,
		J:              *j,
		Mu:             *mu,
		MaxFailedDrops: *maxFailed,
	}
	if *schemes != "" {
		cfg.Schemes = splitComma(*schemes)
	} else if *extended {
		cfg.Schemes = []string{"random", "scan", "proposed", "two-sided", "local-refine", "hierarchical"}
	}
	if *inject != "" {
		wrap, err := parseInjectSpec(*inject)
		if err != nil {
			return err
		}
		cfg.WrapSounder = wrap
	}

	if *pprofPfx != "" {
		cf, err := os.Create(*pprofPfx + ".cpu.pprof")
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			cf.Close()
			hf, err := os.Create(*pprofPfx + ".heap.pprof")
			if err != nil {
				fmt.Fprintln(stderr, "figgen: create heap profile:", err)
				return
			}
			if err := pprof.Lookup("heap").WriteTo(hf, 0); err != nil {
				fmt.Fprintln(stderr, "figgen: write heap profile:", err)
			}
			hf.Close()
		}()
	}

	figs := []int{*fig}
	if *all {
		figs = []int{5, 6, 7, 8}
	}
	anyFailures := false
	for _, f := range figs {
		// One recorder per figure so each manifest carries only its own
		// run's timings and counters.
		fctx := ctx
		var rec *obs.Recorder
		if *instrument {
			rec = obs.New()
			if *progress {
				rec.SetProgress(obs.ProgressPrinter(stderr, fmt.Sprintf("fig%d", f), time.Second))
			}
			if *counters {
				obs.Publish(fmt.Sprintf("figgen.fig%d", f), rec)
			}
			fctx = obs.Into(ctx, rec)
		}

		start := time.Now()
		result, err := experiment.GenerateContext(fctx, f, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "== %s (%s) — %d drops, %v ==\n", result.ID, result.Title, *drops, time.Since(start).Round(time.Millisecond))
		if result.Failures != nil {
			anyFailures = true
			// Failure diagnostics belong on stderr: stdout carries the
			// figure tables that downstream tooling parses.
			fmt.Fprintf(stderr, "!! %s: %d of %d drops excluded under the error budget:\n",
				result.ID, result.Failures.FailedDrops, result.Failures.TotalDrops)
			for _, fl := range result.Failures.Failures {
				fmt.Fprintf(stderr, "!!   drop %d scheme %s: %v\n", fl.Drop, fl.Scheme, fl.Err)
			}
		}
		if err := metrics.WriteTable(stdout, result.XLabel, result.Series); err != nil {
			return err
		}
		if err := metrics.PlotASCII(stdout, result.YLabel+" vs "+result.XLabel, result.Series, 64, 14); err != nil {
			return err
		}
		if *counters && rec != nil {
			if err := rec.Snapshot().WriteText(stderr); err != nil {
				return err
			}
		}

		path := *out
		if *all || path == "" {
			path = filepath.Join(*outdir, result.ID+".csv")
		}
		fh, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		err = metrics.WriteCSV(fh, result.XLabel, result.Series)
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)

		if *manifest && result.Manifest != nil {
			result.Manifest.Version = versionString()
			result.Manifest.CreatedAt = time.Now().UTC().Format(time.RFC3339)
			mpath := strings.TrimSuffix(path, filepath.Ext(path)) + ".manifest.json"
			mf, err := os.Create(mpath)
			if err != nil {
				return fmt.Errorf("create %s: %w", mpath, err)
			}
			// WriteJSON self-validates: a manifest that violates its own
			// schema fails the run rather than poisoning the audit trail.
			err = result.Manifest.WriteJSON(mf)
			if cerr := mf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("write %s: %w", mpath, err)
			}
			fmt.Fprintf(stdout, "wrote %s\n", mpath)
		}

		if *jsonOut {
			jpath := strings.TrimSuffix(path, filepath.Ext(path)) + ".json"
			jf, err := os.Create(jpath)
			if err != nil {
				return fmt.Errorf("create %s: %w", jpath, err)
			}
			err = metrics.WriteJSON(jf, result.XLabel, result.Series)
			if cerr := jf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("write %s: %w", jpath, err)
			}
			fmt.Fprintf(stdout, "wrote %s\n", jpath)
		}
		fmt.Fprintln(stdout)
	}
	if *strict && anyFailures {
		return fmt.Errorf("-strict: figure completed with failed drops")
	}
	return nil
}

// parseInjectSpec converts a "key=value,..." fault spec into a
// WrapSounder hook. Probability keys nan, inf, outlier and drop are per
// measurement; block-after and seed configure blockage and the fault
// stream; panic-drop=N panics on drop N's first measurement — the knob
// the CI strict-mode smoke uses to produce a genuinely failed drop.
func parseInjectSpec(spec string) (func(drop int, scheme string, p meas.Prober) meas.Prober, error) {
	var fcfg faultinject.Config
	panicDrop := -1
	for _, kv := range splitComma(spec) {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("inject: %q is not key=value", kv)
		}
		switch key {
		case "nan", "inf", "outlier", "drop":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("inject: %s=%q is not a probability", key, val)
			}
			switch key {
			case "nan":
				fcfg.PNaN = p
			case "inf":
				fcfg.PInf = p
			case "outlier":
				fcfg.POutlier = p
			case "drop":
				fcfg.PDrop = p
			}
		case "block-after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("inject: block-after=%q is not a count", val)
			}
			fcfg.BlockAfter = n
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("inject: seed=%q is not an integer", val)
			}
			fcfg.Seed = s
		case "panic-drop":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("inject: panic-drop=%q is not a drop index", val)
			}
			panicDrop = n
		default:
			return nil, fmt.Errorf("inject: unknown key %q", key)
		}
	}
	wrap := faultinject.Wrap(fcfg)
	return func(drop int, scheme string, p meas.Prober) meas.Prober {
		p = wrap(drop, scheme, p)
		if drop == panicDrop {
			return &panicProber{Prober: p}
		}
		return p
	}, nil
}

// panicProber crashes on the first pair measurement of its drop. The
// stochastic faults degrade gracefully inside the strategies, so this
// is the only injection that exercises the failed-drop path end to end.
type panicProber struct {
	meas.Prober
}

func (p *panicProber) Measure(txBeam, rxBeam int, u, v cmat.Vector) meas.Measurement {
	panic("figgen: injected measurement panic (-inject panic-drop)")
}

// versionString identifies the source tree for the manifest: build-info
// VCS stamping when the binary carries it, git describe as the dev-tree
// fallback.
func versionString() string {
	if v := experiment.VersionString(); v != "" {
		return v
	}
	if out, err := exec.Command("git", "describe", "--always", "--dirty").Output(); err == nil {
		if v := strings.TrimSpace(string(out)); v != "" {
			return v
		}
	}
	return "unknown"
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
