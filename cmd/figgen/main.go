// Command figgen regenerates the result figures of the paper
// (Fig. 5–8) as CSV files and quick ASCII plots.
//
// Usage:
//
//	figgen -fig 5 -drops 100 -out fig5.csv
//	figgen -all -drops 100 -outdir results/
//
// The output CSV has one row per sweep point and one column per scheme;
// the same data is printed as an aligned table and an ASCII plot on
// stdout so the figure shape can be checked without leaving the
// terminal.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mmwalign/internal/experiment"
	"mmwalign/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig       = flag.Int("fig", 0, "paper figure to regenerate (5-8)")
		all       = flag.Bool("all", false, "regenerate all figures")
		drops     = flag.Int("drops", 100, "independent channel drops per point")
		seed      = flag.Int64("seed", 1, "random seed")
		gammaDB   = flag.Float64("gamma", 0, "pre-beamforming SNR Es/N0 in dB")
		snapshots = flag.Int("snapshots", 4, "fading+noise snapshots per measurement")
		j         = flag.Int("j", 8, "measurements per TX slot (proposed scheme)")
		mu        = flag.Float64("mu", 1, "nuclear-norm regularization weight")
		schemes   = flag.String("schemes", "", "comma-separated scheme list (default: random,scan,proposed)")
		extended  = flag.Bool("extended", false, "include the extension schemes (two-sided, local-refine, hierarchical)")
		out       = flag.String("out", "", "CSV output path (single figure; default stdout only)")
		outdir    = flag.String("outdir", ".", "output directory for -all")
		jsonOut   = flag.Bool("json", false, "also write a .json next to each CSV")
		timeout   = flag.Duration("timeout", 0, "abort generation after this duration (0 = no limit)")
		maxFailed = flag.Int("max-failed-drops", 0, "error budget: drops that may fail while still producing a figure (failures are excluded and reported)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if !*all && (*fig < 5 || *fig > 8) {
		return fmt.Errorf("pass -fig 5..8 or -all")
	}

	cfg := experiment.Config{
		Seed:           *seed,
		Drops:          *drops,
		GammaDB:        *gammaDB,
		Snapshots:      *snapshots,
		J:              *j,
		Mu:             *mu,
		MaxFailedDrops: *maxFailed,
	}
	if *schemes != "" {
		cfg.Schemes = splitComma(*schemes)
	} else if *extended {
		cfg.Schemes = []string{"random", "scan", "proposed", "two-sided", "local-refine", "hierarchical"}
	}

	figs := []int{*fig}
	if *all {
		figs = []int{5, 6, 7, 8}
	}
	for _, f := range figs {
		start := time.Now()
		result, err := experiment.GenerateContext(ctx, f, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("== %s (%s) — %d drops, %v ==\n", result.ID, result.Title, *drops, time.Since(start).Round(time.Millisecond))
		if result.Failures != nil {
			fmt.Printf("!! %d of %d drops excluded under the error budget:\n",
				result.Failures.FailedDrops, result.Failures.TotalDrops)
			for _, fl := range result.Failures.Failures {
				fmt.Printf("!!   drop %d scheme %s: %v\n", fl.Drop, fl.Scheme, fl.Err)
			}
		}
		if err := metrics.WriteTable(os.Stdout, result.XLabel, result.Series); err != nil {
			return err
		}
		if err := metrics.PlotASCII(os.Stdout, result.YLabel+" vs "+result.XLabel, result.Series, 64, 14); err != nil {
			return err
		}

		path := *out
		if *all || path == "" {
			path = filepath.Join(*outdir, result.ID+".csv")
		}
		fh, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		err = metrics.WriteCSV(fh, result.XLabel, result.Series)
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		fmt.Printf("wrote %s\n", path)

		if *jsonOut {
			jpath := strings.TrimSuffix(path, filepath.Ext(path)) + ".json"
			jf, err := os.Create(jpath)
			if err != nil {
				return fmt.Errorf("create %s: %w", jpath, err)
			}
			err = metrics.WriteJSON(jf, result.XLabel, result.Series)
			if cerr := jf.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("write %s: %w", jpath, err)
			}
			fmt.Printf("wrote %s\n", jpath)
		}
		fmt.Println()
	}
	return nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
