package mmwalign

// The benchmark harness regenerates every result figure of the paper
// (Fig. 5-8, there are no result tables) plus the ablations DESIGN.md
// calls out. Each figure bench runs the corresponding generator on a
// reduced drop count (benchmarks measure cost; cmd/figgen produces the
// full-fidelity curves) and reports the headline metric — the proposed
// scheme's mean SNR loss, or its required search rate — via
// b.ReportMetric so regressions in result quality show up alongside
// regressions in speed.

import (
	"fmt"
	"strconv"
	"testing"

	"mmwalign/internal/align"
	"mmwalign/internal/antenna"
	"mmwalign/internal/benchsuite"
	"mmwalign/internal/channel"
	"mmwalign/internal/cmat"
	"mmwalign/internal/covest"
	"mmwalign/internal/experiment"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
)

// benchConfig is the reduced-size figure configuration used by the
// benches: the paper's arrays and codebooks with fewer drops.
func benchConfig(multipath bool) experiment.Config {
	return experiment.Config{
		Seed:      1,
		Drops:     4,
		Multipath: multipath,
	}
}

// reportProposed extracts the proposed scheme's value at the last sweep
// point and attaches it to the benchmark output.
func reportProposed(b *testing.B, fig experiment.Figure, metric string) {
	b.Helper()
	for _, s := range fig.Series {
		if s.Name == "proposed" && len(s.Y) > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1], metric)
			return
		}
	}
}

// BenchmarkFig5SearchEffectivenessSinglepath regenerates Fig. 5: SNR
// loss vs search rate on the single-path channel.
func BenchmarkFig5SearchEffectivenessSinglepath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Generate(5, benchConfig(false))
		if err != nil {
			b.Fatal(err)
		}
		reportProposed(b, fig, "loss_dB")
	}
}

// BenchmarkFig6SearchEffectivenessMultipath regenerates Fig. 6: SNR loss
// vs search rate on the NYC multipath channel.
func BenchmarkFig6SearchEffectivenessMultipath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Generate(6, benchConfig(true))
		if err != nil {
			b.Fatal(err)
		}
		reportProposed(b, fig, "loss_dB")
	}
}

// BenchmarkFig7CostEfficiencySinglepath regenerates Fig. 7: required
// search rate vs target loss on the single-path channel.
func BenchmarkFig7CostEfficiencySinglepath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Generate(7, benchConfig(false))
		if err != nil {
			b.Fatal(err)
		}
		reportProposed(b, fig, "rate_at_3dB")
	}
}

// BenchmarkFig8CostEfficiencyMultipath regenerates Fig. 8: required
// search rate vs target loss on the NYC multipath channel.
func BenchmarkFig8CostEfficiencyMultipath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Generate(8, benchConfig(true))
		if err != nil {
			b.Fatal(err)
		}
		reportProposed(b, fig, "rate_at_3dB")
	}
}

// BenchmarkAblationEstimatorKind compares the exact per-measurement
// likelihood against the paper's aggregate-statistic form (Eq. 18) on
// the Fig. 5 workload.
func BenchmarkAblationEstimatorKind(b *testing.B) {
	kinds := map[string]covest.ObjectiveKind{
		"per-measurement": covest.PerMeasurement,
		"aggregate":       covest.Aggregate,
	}
	for name, kind := range kinds {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(false)
				cfg.EstimatorKind = kind
				cfg.Schemes = []string{"proposed"}
				cfg.SearchRates = []float64{0.2}
				fig, err := experiment.SearchEffectiveness(cfg)
				if err != nil {
					b.Fatal(err)
				}
				reportProposed(b, fig, "loss_dB")
			}
		})
	}
}

// BenchmarkAblationMu sweeps the nuclear-norm regularization weight —
// the estimator's key hyperparameter.
func BenchmarkAblationMu(b *testing.B) {
	for _, mu := range []float64{0.3, 1, 3} {
		b.Run(formatFloat(mu), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(false)
				cfg.Mu = mu
				cfg.Schemes = []string{"proposed"}
				cfg.SearchRates = []float64{0.2}
				fig, err := experiment.SearchEffectiveness(cfg)
				if err != nil {
					b.Fatal(err)
				}
				reportProposed(b, fig, "loss_dB")
			}
		})
	}
}

// BenchmarkAblationJ sweeps the per-TX-slot measurement count J, the
// exploration/exploitation knob of Algorithm 1.
func BenchmarkAblationJ(b *testing.B) {
	for _, j := range []int{4, 8, 16} {
		b.Run(formatInt(j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(false)
				cfg.J = j
				cfg.Schemes = []string{"proposed"}
				cfg.SearchRates = []float64{0.2}
				fig, err := experiment.SearchEffectiveness(cfg)
				if err != nil {
					b.Fatal(err)
				}
				reportProposed(b, fig, "loss_dB")
			}
		})
	}
}

// BenchmarkAblationWindow compares bounded estimation windows against
// full history (window = whole budget), the flat-cost design choice.
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []int{32, 96, 100000} {
		b.Run(formatInt(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(false)
				cfg.Window = w
				cfg.Schemes = []string{"proposed"}
				cfg.SearchRates = []float64{0.2}
				fig, err := experiment.SearchEffectiveness(cfg)
				if err != nil {
					b.Fatal(err)
				}
				reportProposed(b, fig, "loss_dB")
			}
		})
	}
}

// BenchmarkAblationHierarchical compares the hierarchical-codebook
// extension against the paper's schemes on the Fig. 6 workload.
func BenchmarkAblationHierarchical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(true)
		cfg.Schemes = []string{"hierarchical", "proposed"}
		cfg.SearchRates = []float64{0.2}
		fig, err := experiment.SearchEffectiveness(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportProposed(b, fig, "loss_dB")
	}
}

// BenchmarkAblationTwoSided compares the future-work two-sided extension
// (feedback-driven TX selection) against the paper's proposed scheme.
func BenchmarkAblationTwoSided(b *testing.B) {
	for _, scheme := range []string{"proposed", "two-sided"} {
		b.Run(scheme, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(false)
				cfg.Schemes = []string{scheme}
				cfg.SearchRates = []float64{0.2}
				fig, err := experiment.SearchEffectiveness(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(fig.Series) > 0 && len(fig.Series[0].Y) > 0 {
					b.ReportMetric(fig.Series[0].Y[0], "loss_dB")
				}
			}
		})
	}
}

// BenchmarkAblationPhaseBits quantifies the cost of finite-resolution
// analog phase shifters on the Fig. 5 workload.
func BenchmarkAblationPhaseBits(b *testing.B) {
	for _, bits := range []int{1, 2, 3, 0} {
		name := "ideal"
		if bits > 0 {
			name = strconv.Itoa(bits) + "bit"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(false)
				cfg.PhaseBits = bits
				cfg.Schemes = []string{"proposed"}
				cfg.SearchRates = []float64{0.2}
				fig, err := experiment.SearchEffectiveness(cfg)
				if err != nil {
					b.Fatal(err)
				}
				reportProposed(b, fig, "loss_dB")
			}
		})
	}
}

// BenchmarkAblationDigital compares the fully-digital receiver upper
// bound against the paper's analog proposed scheme on the Fig. 5
// workload — the hardware-cost trade the paper's Sec. III frames.
func BenchmarkAblationDigital(b *testing.B) {
	for _, scheme := range []string{"proposed", "digital"} {
		b.Run(scheme, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(false)
				cfg.Schemes = []string{scheme}
				cfg.SearchRates = []float64{0.1}
				fig, err := experiment.SearchEffectiveness(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(fig.Series) > 0 && len(fig.Series[0].Y) > 0 {
					b.ReportMetric(fig.Series[0].Y[0], "loss_dB")
				}
			}
		})
	}
}

// BenchmarkAblationLocalRefine compares the divide-and-conquer
// hill-climbing baseline (reference [13] style) against the proposed
// scheme on the Fig. 6 workload.
func BenchmarkAblationLocalRefine(b *testing.B) {
	for _, scheme := range []string{"proposed", "local-refine"} {
		b.Run(scheme, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(true)
				cfg.Schemes = []string{scheme}
				cfg.SearchRates = []float64{0.2}
				fig, err := experiment.SearchEffectiveness(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(fig.Series) > 0 && len(fig.Series[0].Y) > 0 {
					b.ReportMetric(fig.Series[0].Y[0], "loss_dB")
				}
			}
		})
	}
}

// --- micro-benchmarks of the hot kernels ---

// BenchmarkEstimate is the canonical regression-guarded estimator
// benchmark (shared with cmd/benchdiff via internal/benchsuite): one
// full nuclear-norm ML covariance estimation with allocation reporting
// and the solver's Stats counters attached as metrics. Compare against
// BENCH_estimate.json with cmd/benchdiff.
func BenchmarkEstimate(b *testing.B) {
	benchsuite.BenchEstimate(b)
}

// BenchmarkEigen is the canonical regression-guarded eigendecomposition
// benchmark (shared with cmd/benchdiff): a 64x64 Hermitian Jacobi
// decomposition through a reused EigenWorkspace. Compare against
// BENCH_eigen.json with cmd/benchdiff.
func BenchmarkEigen(b *testing.B) {
	benchsuite.BenchEigen(b)
}

// BenchmarkGEMM is the canonical regression-guarded batched-kernel
// benchmark (shared with cmd/benchdiff): one Q·V product plus column
// dots at the solver's 64x56 problem size. Compare against
// BENCH_gemm.json with cmd/benchdiff.
func BenchmarkGEMM(b *testing.B) {
	benchsuite.BenchGEMM(b)
}

// BenchmarkCodebookScore is the canonical regression-guarded codebook
// scoring benchmark (shared with cmd/benchdiff): one whole-codebook
// GEMM scoring pass plus a Top-8 ranking. Compare against
// BENCH_codebook.json with cmd/benchdiff.
func BenchmarkCodebookScore(b *testing.B) {
	benchsuite.BenchCodebookScore(b)
}

// BenchmarkServeLoad is the canonical regression-guarded alignment-
// server load benchmark (shared with cmd/benchdiff): a 16-request burst
// from 8 client workers against a 4-slot server, reporting p50/p95/p99
// request latency and the deterministic best-beam score. Compare
// against BENCH_serve.json with cmd/benchdiff.
func BenchmarkServeLoad(b *testing.B) {
	benchsuite.BenchServeLoad(b)
}

// BenchmarkOverloadLoad is the canonical regression-guarded overload
// benchmark (shared with cmd/benchdiff): a 32-request burst from 16
// client workers against a 2-slot, 2-queue server — 4x capacity — so
// the backpressure rejection path dominates. Compare against
// BENCH_overload.json with cmd/benchdiff.
func BenchmarkOverloadLoad(b *testing.B) {
	benchsuite.BenchOverloadLoad(b)
}

// BenchmarkMulticell is the canonical regression-guarded cross-cell
// batching benchmark (shared with cmd/benchdiff): the proposed-only
// Fig. 5 regeneration with 8 concurrent drop workers routing their
// solver GEMMs through the batch scheduler. Compare against
// BENCH_multicell.json with cmd/benchdiff.
func BenchmarkMulticell(b *testing.B) {
	benchsuite.BenchMulticell(b)
}

// BenchmarkScenario is the canonical regression-guarded mobility
// benchmark (shared with cmd/benchdiff): a reduced two-speed trajectory
// sweep of the cold and warm proposed schemes, reporting their
// delivered/genie efficiency at the top speed. Compare against
// BENCH_scenario.json with cmd/benchdiff.
func BenchmarkScenario(b *testing.B) {
	benchsuite.BenchScenario(b)
}

// BenchmarkEigHermitian64 measures the 64×64 Hermitian Jacobi
// eigendecomposition, the inner kernel of every covariance estimation.
func BenchmarkEigHermitian64(b *testing.B) {
	src := rng.New(1)
	m := cmat.New(64, 64)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			m.Set(i, j, src.ComplexNormal(1))
		}
	}
	h := m.Hermitianize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmat.EigHermitian(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCovarianceEstimate measures one full nuclear-norm-regularized
// ML estimation from 56 energy measurements on a 64-antenna receiver —
// the per-TX-slot cost of the proposed scheme.
func BenchmarkCovarianceEstimate(b *testing.B) {
	src := rng.New(2)
	rx := antenna.NewUPA(8, 8)
	cb := antenna.NewGridCodebook(rx, 8, 8, 3.14159, 1.5708)
	truth := cb.Beam(20).Weights.Outer(cb.Beam(20).Weights).Scale(64).Hermitianize()
	var obs []covest.Observation
	for j := 0; j < 56; j++ {
		v := cb.Beam(j).Weights
		lambda := truth.QuadForm(v) + 1
		z := src.ComplexNormal(lambda)
		obs = append(obs, covest.Observation{V: v, Energy: real(z)*real(z) + imag(z)*imag(z)})
	}
	est, err := covest.NewEstimator(64, covest.Options{Gamma: 1, MaxIters: 25})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := est.Estimate(obs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatorSolver compares the plain (ISTA) and accelerated
// (FISTA) proximal solvers on one covariance estimation instance.
func BenchmarkEstimatorSolver(b *testing.B) {
	src := rng.New(5)
	rx := antenna.NewUPA(8, 8)
	cb := antenna.NewGridCodebook(rx, 8, 8, 3.14159, 1.5708)
	truth := cb.Beam(12).Weights.Outer(cb.Beam(12).Weights).Scale(64).Hermitianize()
	var obs []covest.Observation
	for j := 0; j < 48; j++ {
		v := cb.Beam(j).Weights
		lambda := truth.QuadForm(v) + 1
		z := src.ComplexNormal(lambda)
		obs = append(obs, covest.Observation{V: v, Energy: real(z)*real(z) + imag(z)*imag(z)})
	}
	for _, accel := range []bool{false, true} {
		name := "ista"
		if accel {
			name = "fista"
		}
		b.Run(name, func(b *testing.B) {
			est, err := covest.NewEstimator(64, covest.Options{Gamma: 1, MaxIters: 40, Accelerated: accel})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				_, stats, err := est.Estimate(obs, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.Iters), "iters")
				b.ReportMetric(stats.Objective, "objective")
			}
		})
	}
}

// BenchmarkSounderMeasure measures one 4-snapshot pair sounding on the
// NYC multipath channel.
func BenchmarkSounderMeasure(b *testing.B) {
	src := rng.New(3)
	tx, rx := antenna.NewUPA(4, 4), antenna.NewUPA(8, 8)
	ch, err := channel.NewNYCMultipath(src.Split("ch"), tx, rx, channel.DefaultNYC28())
	if err != nil {
		b.Fatal(err)
	}
	s, err := meas.NewSounder(ch, 1, src.Split("noise"))
	if err != nil {
		b.Fatal(err)
	}
	s.SetSnapshots(4)
	u := tx.Steering(antenna.Direction{Az: 0.2})
	v := rx.Steering(antenna.Direction{Az: -0.1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Measure(0, 0, u, v)
	}
}

// BenchmarkOracle measures the ground-truth optimal-pair sweep over all
// 1024 codebook pairs on a multipath channel.
func BenchmarkOracle(b *testing.B) {
	src := rng.New(4)
	tx, rx := antenna.NewUPA(4, 4), antenna.NewUPA(8, 8)
	ch, err := channel.NewNYCMultipath(src.Split("ch"), tx, rx, channel.DefaultNYC28())
	if err != nil {
		b.Fatal(err)
	}
	s, err := meas.NewSounder(ch, 1, src.Split("noise"))
	if err != nil {
		b.Fatal(err)
	}
	env := &align.Env{
		TXBook:  antenna.NewGridCodebook(tx, 4, 4, 3.14159, 1.5708),
		RXBook:  antenna.NewGridCodebook(rx, 8, 8, 3.14159, 1.5708),
		Sounder: s,
		Src:     src.Split("strategy"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.Oracle(env)
	}
}

// BenchmarkAlignProposedRun measures one complete proposed-scheme run at
// a 15% search rate on the paper-sized problem.
func BenchmarkAlignProposedRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		link, err := NewLink(LinkSpec{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		res, err := link.Align(SchemeProposed, 154)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LossDB, "loss_dB")
	}
}

func formatFloat(f float64) string {
	return fmt.Sprintf("mu=%g", f)
}

func formatInt(n int) string {
	if n >= 100000 {
		return "full"
	}
	return strconv.Itoa(n)
}
