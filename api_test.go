package mmwalign

import (
	"math"
	"testing"
)

func TestNewLinkDefaults(t *testing.T) {
	link, err := NewLink(LinkSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := link.TotalPairs(); got != 16*64 {
		t.Errorf("TotalPairs = %d, want 1024", got)
	}
	spec := link.Spec()
	if spec.TXPanelX != 4 || spec.RXPanelX != 8 || spec.Snapshots != 4 {
		t.Errorf("defaults not applied: %+v", spec)
	}
	if spec.Channel != ChannelSinglePath {
		t.Errorf("channel kind = %d", spec.Channel)
	}
}

func TestNewLinkRejectsUnknownChannel(t *testing.T) {
	if _, err := NewLink(LinkSpec{Channel: ChannelKind(99)}); err == nil {
		t.Error("unknown channel kind accepted")
	}
}

func TestAlignBasicResult(t *testing.T) {
	link, err := NewLink(LinkSpec{Seed: 2, TXPanelX: 2, TXPanelZ: 2, RXPanelX: 4, RXPanelZ: 4,
		TXBeamsAz: 4, TXBeamsEl: 2, RXBeamsAz: 4, RXBeamsEl: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := link.Align(SchemeProposed, 32, AlignOptions{J: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != SchemeProposed {
		t.Errorf("scheme = %q", res.Scheme)
	}
	if res.Measurements != 32 {
		t.Errorf("measurements = %d, want 32", res.Measurements)
	}
	if math.Abs(res.SearchRate-32.0/128) > 1e-12 {
		t.Errorf("search rate = %g", res.SearchRate)
	}
	if res.LossDB < 0 {
		t.Errorf("negative loss %g", res.LossDB)
	}
	if res.TrueSNRdB > res.OptimalSNRdB+1e-9 {
		t.Error("selected pair beats the oracle")
	}
	if got := res.OptimalSNRdB - res.TrueSNRdB; math.Abs(got-res.LossDB) > 1e-9 {
		t.Errorf("LossDB inconsistent: %g vs %g", res.LossDB, got)
	}
	if len(res.LossTrajectoryDB) != 32 {
		t.Errorf("trajectory length %d", len(res.LossTrajectoryDB))
	}
	if res.TXBeam < 0 || res.TXBeam >= 8 || res.RXBeam < 0 || res.RXBeam >= 16 {
		t.Errorf("selected pair (%d,%d) out of range", res.TXBeam, res.RXBeam)
	}
	if math.Abs(res.TXAzDeg) > 90 || math.Abs(res.RXAzDeg) > 90 {
		t.Errorf("steering angles out of range: %+v", res)
	}
}

func TestAlignAllSchemes(t *testing.T) {
	link, err := NewLink(LinkSpec{Seed: 3, TXPanelX: 2, TXPanelZ: 2, RXPanelX: 4, RXPanelZ: 4,
		TXBeamsAz: 4, TXBeamsEl: 2, RXBeamsAz: 4, RXBeamsEl: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{SchemeRandom, SchemeScan, SchemeExhaustive, SchemeProposed,
		SchemeHierarchical, SchemeTwoSided, SchemeLocalRefine, SchemeDigital} {
		res, err := link.Align(scheme, 24)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.Measurements == 0 {
			t.Errorf("%s made no measurements", scheme)
		}
	}
}

func TestAlignUnknownScheme(t *testing.T) {
	link, err := NewLink(LinkSpec{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.Align(Scheme("psychic"), 8); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestAlignTooManyOptions(t *testing.T) {
	link, err := NewLink(LinkSpec{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.Align(SchemeRandom, 8, AlignOptions{}, AlignOptions{}); err == nil {
		t.Error("two option structs accepted")
	}
}

func TestAlignRunsAreIndependentButReproducible(t *testing.T) {
	mk := func() (Result, Result) {
		link, err := NewLink(LinkSpec{Seed: 6, TXPanelX: 2, TXPanelZ: 2, RXPanelX: 4, RXPanelZ: 4,
			TXBeamsAz: 4, TXBeamsEl: 2, RXBeamsAz: 4, RXBeamsEl: 4})
		if err != nil {
			t.Fatal(err)
		}
		r1, err := link.Align(SchemeRandom, 16)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := link.Align(SchemeRandom, 16)
		if err != nil {
			t.Fatal(err)
		}
		return r1, r2
	}
	a1, a2 := mk()
	b1, b2 := mk()
	// Same link+seed: run 1 of both links identical; run 2 identical.
	if a1.TXBeam != b1.TXBeam || a1.RXBeam != b1.RXBeam {
		t.Error("first runs differ across identical links")
	}
	if a2.TXBeam != b2.TXBeam || a2.RXBeam != b2.RXBeam {
		t.Error("second runs differ across identical links")
	}
	// Optimal SNR is a property of the channel, shared by both runs.
	if a1.OptimalSNRdB != a2.OptimalSNRdB {
		t.Error("optimal SNR changed between runs on the same link")
	}
}

func TestOptimalSNRdBMatchesAlignReport(t *testing.T) {
	link, err := NewLink(LinkSpec{Seed: 7, TXPanelX: 2, TXPanelZ: 2, RXPanelX: 4, RXPanelZ: 4,
		TXBeamsAz: 4, TXBeamsEl: 2, RXBeamsAz: 4, RXBeamsEl: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := link.OptimalSNRdB()
	res, err := link.Align(SchemeRandom, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.OptimalSNRdB-want) > 1e-9 {
		t.Errorf("OptimalSNRdB %g vs %g", res.OptimalSNRdB, want)
	}
}

func TestNYCMultipathLink(t *testing.T) {
	link, err := NewLink(LinkSpec{Seed: 8, Channel: ChannelNYCMultipath,
		TXPanelX: 2, TXPanelZ: 2, RXPanelX: 4, RXPanelZ: 4,
		TXBeamsAz: 4, TXBeamsEl: 2, RXBeamsAz: 4, RXBeamsEl: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := link.Align(SchemeProposed, 32, AlignOptions{J: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measurements != 32 {
		t.Errorf("measurements = %d", res.Measurements)
	}
}

func TestExhaustiveFullBudgetNearOptimal(t *testing.T) {
	link, err := NewLink(LinkSpec{Seed: 9, SNRdB: 20, Snapshots: 32,
		TXPanelX: 2, TXPanelZ: 2, RXPanelX: 4, RXPanelZ: 4,
		TXBeamsAz: 4, TXBeamsEl: 2, RXBeamsAz: 4, RXBeamsEl: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := link.Align(SchemeExhaustive, link.TotalPairs())
	if err != nil {
		t.Fatal(err)
	}
	// A random path generally falls between grid codewords, leaving a
	// handful of near-tied pairs whose measured ranking can flip under
	// residual fading noise; the loss among those ties is bounded by the
	// codebook quantization, well under 1.5 dB here.
	if res.LossDB > 1.5 {
		t.Errorf("exhaustive full-budget loss = %g dB", res.LossDB)
	}
}
