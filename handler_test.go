package mmwalign

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestNewAlignHandlerServesAndDrains exercises the public embedding
// path end-to-end: both endpoints answer over real HTTP, /v1/align
// agrees with the in-process Link API on the same seeded problem, and
// the returned drain function stops admission.
func TestNewAlignHandlerServesAndDrains(t *testing.T) {
	handler, drain := NewAlignHandler(ServerConfig{})
	ts := httptest.NewServer(handler)
	defer ts.Close()

	post := func(path, body string) (int, []byte) {
		t.Helper()
		res, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		data, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return res.StatusCode, data
	}

	status, data := post("/v1/estimate", `{
		"panel_x": 4, "panel_z": 1, "beams_az": 4, "beams_el": 1,
		"max_iters": 5, "top_k": 2,
		"observations": [
			{"beam": 0, "energy": 2.0}, {"beam": 1, "energy": 7.0},
			{"beam": 2, "energy": 4.0}, {"beam": 3, "energy": 2.2}
		]
	}`)
	if status != http.StatusOK {
		t.Fatalf("/v1/estimate status = %d; body %s", status, data)
	}
	var est struct {
		Picks struct {
			Best struct {
				Beam int `json:"beam"`
			} `json:"best"`
			TopK []json.RawMessage `json:"top_k"`
		} `json:"picks"`
	}
	if err := json.Unmarshal(data, &est); err != nil {
		t.Fatalf("decoding estimate response: %v", err)
	}
	if est.Picks.Best.Beam != 1 || len(est.Picks.TopK) != 2 {
		t.Errorf("picks = best %d, %d ranked; want beam 1, 2 ranked",
			est.Picks.Best.Beam, len(est.Picks.TopK))
	}

	// The served alignment must agree with the in-process facade on the
	// same seeded problem — the server is a transport, not a model.
	status, data = post("/v1/align", `{"scheme": "scan", "budget": 16, "seed": 7}`)
	if status != http.StatusOK {
		t.Fatalf("/v1/align status = %d; body %s", status, data)
	}
	var al struct {
		LossDB       float64 `json:"loss_db"`
		Measurements int     `json:"measurements"`
	}
	if err := json.Unmarshal(data, &al); err != nil {
		t.Fatalf("decoding align response: %v", err)
	}
	link, err := NewLink(LinkSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := link.Align(SchemeScan, 16)
	if err != nil {
		t.Fatal(err)
	}
	if al.LossDB != res.LossDB || al.Measurements != res.Measurements {
		t.Errorf("served align (loss %v, %d meas) != Link.Align (loss %v, %d meas)",
			al.LossDB, al.Measurements, res.LossDB, res.Measurements)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	status, data = post("/v1/estimate", `{"observations": [{"beam": 0, "energy": 2}]}`)
	if status != http.StatusServiceUnavailable {
		t.Errorf("status after drain = %d, want 503; body %s", status, data)
	}
}
