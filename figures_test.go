package mmwalign

import "testing"

func TestReproduceFigureValidation(t *testing.T) {
	if _, err := ReproduceFigure(5, 0, 1); err == nil {
		t.Error("zero drops accepted")
	}
	if _, err := ReproduceFigure(4, 1, 1); err == nil {
		t.Error("figure 4 accepted (paper has 5-8)")
	}
}

func TestReproduceFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	fig, err := ReproduceFigure(5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig5" {
		t.Errorf("ID = %q", fig.ID)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3 (random, scan, proposed)", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) || len(s.YErr) != len(s.Y) {
			t.Errorf("series %s malformed: %d/%d/%d points", s.Name, len(s.X), len(s.Y), len(s.YErr))
		}
	}
}

func TestReproduceFigureDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	a, err := ReproduceFigure(7, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReproduceFigure(7, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for j := range a.Series[i].Y {
			if a.Series[i].Y[j] != b.Series[i].Y[j] {
				t.Fatal("identical inputs produced different figures")
			}
		}
	}
}
