package mmwalign

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"sync"
	"testing"
)

func TestReproduceFigureValidation(t *testing.T) {
	if _, err := ReproduceFigure(5, 0, 1); err == nil {
		t.Error("zero drops accepted")
	}
	if _, err := ReproduceFigure(4, 1, 1); err == nil {
		t.Error("figure 4 accepted (paper has 5-8)")
	}
}

func TestReproduceFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	fig, err := ReproduceFigure(5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig5" {
		t.Errorf("ID = %q", fig.ID)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3 (random, scan, proposed)", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) || len(s.YErr) != len(s.Y) {
			t.Errorf("series %s malformed: %d/%d/%d points", s.Name, len(s.X), len(s.Y), len(s.YErr))
		}
	}
}

func TestReproduceFigureDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	a, err := ReproduceFigure(7, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReproduceFigure(7, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for j := range a.Series[i].Y {
			if a.Series[i].Y[j] != b.Series[i].Y[j] {
				t.Fatal("identical inputs produced different figures")
			}
		}
	}
}

func TestReproduceFigureInstrumented(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	var mu sync.Mutex
	var events int
	fig, err := ReproduceFigureContext(context.Background(), 5, 2, 1, ReproduceOptions{
		Instrument: true,
		Progress: func(done, total, failed int) {
			mu.Lock()
			events++
			mu.Unlock()
			if done < 1 || done > total || failed > done {
				t.Errorf("inconsistent progress event: %d/%d, %d failed", done, total, failed)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := fig.Manifest
	if m == nil {
		t.Fatal("instrumented reproduction has no manifest")
	}
	if !m.Instrumented || len(m.Phases) == 0 || m.Solver.Estimations == 0 {
		t.Errorf("manifest lacks instrumentation: %+v", m)
	}
	if m.Figure != "fig5" || m.Seed != 1 || len(m.ConfigJSON) == 0 {
		t.Errorf("manifest identity wrong: %+v", m)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("mmwalign/run-manifest/v1")) {
		t.Error("serialized manifest lacks the schema marker")
	}
	mu.Lock()
	defer mu.Unlock()
	if events == 0 {
		t.Error("no progress events delivered")
	}

	// Without Instrument the manifest still identifies the run but stays
	// uninstrumented.
	plain, err := ReproduceFigure(5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Manifest == nil || plain.Manifest.Instrumented {
		t.Errorf("uninstrumented manifest = %+v", plain.Manifest)
	}
}

func TestReproduceFigureCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction in -short mode")
	}
	clean, err := ReproduceFigure(5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt a checkpointed run after the first completed cell, then
	// resume it: the public API must stitch the figure back together
	// bit-for-bit and report how in the manifest.
	path := filepath.Join(t.TempDir(), "fig5.journal")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = ReproduceFigureContext(ctx, 5, 2, 1, ReproduceOptions{
		Checkpoint: path,
		Instrument: true,
		Progress:   func(done, total, failed int) { cancel() },
	})
	if err == nil {
		t.Fatal("cancelled checkpointed run succeeded")
	}

	fig, err := ReproduceFigureContext(context.Background(), 5, 2, 1, ReproduceOptions{
		Checkpoint: path,
		Resume:     true,
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	for i := range clean.Series {
		for j := range clean.Series[i].Y {
			if math.Float64bits(fig.Series[i].Y[j]) != math.Float64bits(clean.Series[i].Y[j]) ||
				math.Float64bits(fig.Series[i].YErr[j]) != math.Float64bits(clean.Series[i].YErr[j]) {
				t.Fatalf("resumed series %s point %d differs from uninterrupted run", clean.Series[i].Name, j)
			}
		}
	}
	if fig.Manifest == nil || fig.Manifest.Resume == nil {
		t.Fatal("resumed run manifest lacks resume evidence")
	}
	r := fig.Manifest.Resume
	if r.Journal != path || r.SkippedCells == 0 || r.SkippedCells+r.RecordedCells != r.TotalCells {
		t.Errorf("resume evidence = %+v", r)
	}

	// A figure-affecting option change must refuse the journal.
	if _, err := ReproduceFigureContext(context.Background(), 5, 3, 1, ReproduceOptions{
		Checkpoint: path,
		Resume:     true,
	}); err == nil {
		t.Error("resume across a changed drop count accepted")
	}
}
